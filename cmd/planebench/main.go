// Command planebench measures the real dataplane runtime on real hardware:
// sustained throughput and round-trip latency of QWAIT-notified workers vs
// spin-polling workers across tenant counts — the software analogue of the
// paper's Fig. 8 comparison, without the simulator.
//
// Example:
//
//	planebench -tenants 8,64,256 -duration 2s
//
// With the fault harness it also measures tenant isolation: a fraction of
// tenants is injected with handler panics/errors/latency spikes and stalled
// consumers, and throughput is reported separately for healthy and faulty
// tenants so the isolation cost is visible directly:
//
//	planebench -tenants 64 -faulty 0.25 -panic-every 1 -stall \
//	           -drop drop-newest -quarantine 3
//
// The batched data path is swept with -batch (MaxBatch values; 1 = the
// per-item baseline) and -producers (ingress goroutines per tenant; >1
// switches the tenant rings to the shared MPSC variant). -out records the
// whole grid as JSON (BENCH_dataplane.json via `make bench`), including
// the batched-over-per-item speedup per tenants x mode point:
//
//	planebench -tenants 8,64 -batch 1,16 -producers 4 -out BENCH_dataplane.json
//
// -metrics-addr attaches a telemetry plane to every measured cell and
// serves the live cell's export endpoint (/metrics, /debug/tenants,
// /debug/pprof) for the duration of the sweep, so a long run can be
// watched from a browser or scraped by Prometheus:
//
//	planebench -tenants 256 -duration 60s -metrics-addr :9090
//
// -skew switches to the skewed tenant-load mode: instead of one flood
// per tenant, a shared pool of -producers goroutines samples a tenant
// per item from a Zipf(s) distribution (seeded by -seed, so runs are
// reproducible), and each Notify point is measured twice — work stealing
// off and on — recording the steal speedup per cell. -steal-check fails
// the run when stealing does not reach the given fraction of the
// no-steal throughput on a multi-core host (single-core hosts record a
// scaling note instead); -merge appends the skew grid to an existing
// -out report instead of overwriting it:
//
//	planebench -skew 1.1 -seed 1 -tenants 16 -workers 4 -batch 16 \
//	           -out BENCH_dataplane.json -merge -steal-check 1.0
//
// -loadsweep measures the power-proportionality curve (the runtime analog
// of the paper's Figs. 11/12): a flood probe establishes the plane's
// capacity, then each listed percentage of that capacity is offered as a
// paced rate to two planes — spin workers (the always-burning baseline)
// and a Balanced-governed Notify plane — recording CPU-seconds per cell.
// -prop-check fails the run when the governed plane burns more than the
// given fraction of the spin baseline's CPU at the lowest load point
// (single-core hosts record a scaling note instead):
//
//	planebench -loadsweep 5,10,25,50,100 -tenants 8 -workers 4 -batch 16 \
//	           -out BENCH_dataplane.json -merge -prop-check 0.4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane"
	"hyperplane/dataplane"
	"hyperplane/internal/benchmeta"
	"hyperplane/internal/fault"
	"hyperplane/internal/telemetry"
)

type benchConfig struct {
	workers    int
	capacity   int
	mode       dataplane.Mode
	duration   time.Duration
	rate       float64
	policy     hyperplane.Policy
	delivery   dataplane.DeliveryPolicy
	deliverTO  time.Duration
	quarantine int
	maxBatch   int // MaxBatch for the plane; 1 pins the per-item path
	producers  int // ingress goroutines per tenant; >1 => SharedIngress

	// skewed tenant-load mode (-skew): producers becomes a shared pool
	// whose goroutines sample a tenant per item from Zipf(skew), seeded
	// by zipfSeed for reproducibility; steal toggles the dataplane's
	// cross-bank work-stealing consumer path.
	skew     float64
	zipfSeed int64
	steal    bool

	// proportionality mode (-loadsweep): governed runs the plane under
	// the elastic governor (Balanced: hybrid wait + elastic active set)
	// so its CPU burn can be compared against the spin baseline's.
	governed bool

	// durable mode (-durable): the cell runs with a WAL-backed durable
	// tier in a throwaway temp dir, so the grid records the durability
	// tax against the matching in-memory cell.
	durable bool

	// fault plan (nil faultCfg = no injection)
	faultFrac  float64
	seed       int64
	panicEvery int
	errorEvery int
	spikeEvery int
	spike      time.Duration
	stall      bool

	// non-nil when -metrics-addr is set: each cell attaches a telemetry
	// plane and publishes it here while it measures
	metrics *metricsProxy
}

// metricsProxy serves the telemetry plane of whichever grid cell is
// currently measuring. Each measure() call builds a fresh dataplane (and
// with it a fresh telemetry plane), so a fixed -metrics-addr endpoint
// forwards to the live one and answers 503 between cells.
type metricsProxy struct {
	cur atomic.Pointer[telemetry.T]
}

func (mp *metricsProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t := mp.cur.Load()
	if t == nil {
		http.Error(w, "no cell measuring", http.StatusServiceUnavailable)
		return
	}
	t.Handler().ServeHTTP(w, r)
}

func main() {
	var (
		tenantsFlag = flag.String("tenants", "8,64,256", "comma-separated tenant counts to sweep")
		workers     = flag.Int("workers", 1, "data plane workers")
		duration    = flag.Duration("duration", 2*time.Second, "measurement window per point")
		capacity    = flag.Int("cap", 1024, "ring capacity (power of two)")
		rate        = flag.Float64("rate", 0, "paced ingress per tenant (items/s); 0 = flood (saturation)")
		policyFlag  = flag.String("policy", "rr", "Notify-mode service policy: rr | wrr | strict | drr | ewma")

		dropFlag   = flag.String("drop", "block", "delivery policy: block, drop-newest, drop-oldest")
		deliverTO  = flag.Duration("delivery-timeout", 0, "Block-policy per-item delivery deadline (0 = unbounded)")
		quarantine = flag.Int("quarantine", 0, "quarantine after N consecutive tenant failures (0 = off)")

		faultFrac  = flag.Float64("faulty", 0, "fraction of tenants injected faulty (0 = no injection)")
		faultSeed  = flag.Int64("fault-seed", 1, "fault plan seed")
		panicEvery = flag.Int("panic-every", 0, "panic every Nth item of a faulty tenant (0 = never)")
		errorEvery = flag.Int("error-every", 0, "fail every Nth item of a faulty tenant (0 = never)")
		spikeEvery = flag.Int("spike-every", 0, "latency-spike every Nth item of a faulty tenant (0 = never)")
		spike      = flag.Duration("spike", time.Millisecond, "injected handler latency per spike")
		stall      = flag.Bool("stall", false, "stall faulty tenants' consumers (dead delivery rings)")

		batchFlag = flag.String("batch", "1,16", "comma-separated MaxBatch values to sweep (1 = per-item baseline)")
		producers = flag.Int("producers", 1, "ingress goroutines per tenant (>1 switches to shared MPSC ingress rings); with -skew, the total shared producer pool")
		trials    = flag.Int("trials", 1, "runs per cell; the median by items/s is reported")
		outFlag   = flag.String("out", "", "write the measured grid as JSON (BENCH_dataplane.json) to this path")

		durable      = flag.Bool("durable", false, "measure every point twice — in-memory and WAL-durable (temp dir) — recording the durability tax per cell")
		durableCheck = flag.Float64("durable-check", 0, "guard: fail unless durable items/s >= this fraction of in-memory on every MaxBatch>=64 point (multi-core hosts only)")

		loadsweep = flag.String("loadsweep", "",
			"comma-separated load percentages of measured flood capacity; each point is measured as a paced spin baseline and a paced Balanced-governed Notify plane, recording cpu_seconds per cell")
		propCheck = flag.Float64("prop-check", 0,
			"guard: fail unless governed cpu_seconds <= this fraction of the spin baseline's at the lowest -loadsweep point (multi-core hosts only)")

		skew       = flag.Float64("skew", 0, "Zipf skew s (> 1) for the skewed tenant-load mode; 0 = uniform per-tenant flood")
		zipfSeed   = flag.Int64("seed", 1, "Zipf sampling seed for reproducible -skew runs")
		stealCheck = flag.Float64("steal-check", 0, "guard: fail unless steal-on items/s >= this fraction of steal-off on every -skew point (multi-core hosts only)")
		smoke      = flag.Bool("smoke", false, "shrink the measurement window and trials for CI smoke runs")
		merge      = flag.Bool("merge", false, "append this sweep's cells to an existing -out report instead of overwriting it")

		metricsAddr = flag.String("metrics-addr", "",
			"serve the measuring cell's telemetry plane (/metrics, /debug/tenants, pprof) on this address")
	)
	flag.Parse()

	parseInts := func(flagName, s string) []int {
		var out []int
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "planebench: bad %s entry %q\n", flagName, part)
				os.Exit(2)
			}
			out = append(out, n)
		}
		return out
	}
	counts := parseInts("-tenants", *tenantsFlag)
	batches := parseInts("-batch", *batchFlag)

	if *smoke {
		*duration = 250 * time.Millisecond
		*trials = 1
	}
	if *skew != 0 && *skew <= 1 {
		fmt.Fprintln(os.Stderr, "planebench: -skew must be > 1 (Zipf s) or 0")
		os.Exit(2)
	}
	if *stealCheck > 0 && *skew == 0 {
		fmt.Fprintln(os.Stderr, "planebench: -steal-check requires -skew")
		os.Exit(2)
	}
	if *durableCheck > 0 && !*durable {
		fmt.Fprintln(os.Stderr, "planebench: -durable-check requires -durable")
		os.Exit(2)
	}
	if *durable && *skew != 0 {
		fmt.Fprintln(os.Stderr, "planebench: -durable and -skew are separate sweeps; run them as two -merge passes")
		os.Exit(2)
	}
	if *propCheck > 0 && *loadsweep == "" {
		fmt.Fprintln(os.Stderr, "planebench: -prop-check requires -loadsweep")
		os.Exit(2)
	}
	if *loadsweep != "" && (*skew != 0 || *durable || *faultFrac > 0) {
		fmt.Fprintln(os.Stderr, "planebench: -loadsweep is its own sweep; run -skew/-durable/-faulty as separate -merge passes")
		os.Exit(2)
	}

	pol, err := hyperplane.ParsePolicy(*policyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planebench: unknown -policy %q\n", *policyFlag)
		os.Exit(2)
	}

	var delivery dataplane.DeliveryPolicy
	switch *dropFlag {
	case "block":
		delivery = dataplane.Block
	case "drop-newest":
		delivery = dataplane.DropNewest
	case "drop-oldest":
		delivery = dataplane.DropOldest
	default:
		fmt.Fprintf(os.Stderr, "planebench: bad -drop %q\n", *dropFlag)
		os.Exit(2)
	}

	cfg := benchConfig{
		workers:    *workers,
		capacity:   *capacity,
		duration:   *duration,
		rate:       *rate,
		policy:     pol,
		delivery:   delivery,
		deliverTO:  *deliverTO,
		quarantine: *quarantine,
		faultFrac:  *faultFrac,
		seed:       *faultSeed,
		panicEvery: *panicEvery,
		errorEvery: *errorEvery,
		spikeEvery: *spikeEvery,
		spike:      *spike,
		stall:      *stall,
	}

	cfg.producers = *producers
	cfg.skew = *skew
	cfg.zipfSeed = *zipfSeed

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "planebench: -metrics-addr: %v\n", err)
			os.Exit(2)
		}
		cfg.metrics = &metricsProxy{}
		go func() { _ = http.Serve(ln, cfg.metrics) }()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", ln.Addr())
	}

	if *loadsweep != "" {
		pcts := parseInts("-loadsweep", *loadsweep)
		// The governor tunes MaxBatch up to the configured ceiling, so the
		// sweep uses the largest -batch entry.
		batch := batches[0]
		for _, b := range batches {
			if b > batch {
				batch = b
			}
		}
		runLoadSweep(cfg, counts[0], batch, pcts, *propCheck, *trials, *outFlag, *merge)
		return
	}

	injecting := cfg.faultFrac > 0
	skewing := cfg.skew > 0
	switch {
	case injecting:
		fmt.Printf("%8s %10s %6s %14s %14s %12s %12s  %s\n",
			"tenants", "mode", "batch", "healthy/s", "faulty/s", "p50", "p99", "plane stats")
	case skewing:
		fmt.Printf("%8s %10s %6s %6s %14s %12s %12s\n", "tenants", "mode", "batch", "steal", "items/s", "p50", "p99")
	case *durable:
		fmt.Printf("%8s %10s %6s %8s %14s %12s %12s\n", "tenants", "mode", "batch", "durable", "items/s", "p50", "p99")
	default:
		fmt.Printf("%8s %10s %6s %14s %12s %12s\n", "tenants", "mode", "batch", "items/s", "p50", "p99")
	}
	rep := benchReport{
		Host:       benchmeta.Collect(),
		DurationMS: cfg.duration.Milliseconds(),
		Workers:    cfg.workers,
		Producers:  cfg.producers,
	}
	// Skewed-load mode measures Notify only (Spin has no notifier to
	// steal through), each point twice: stealing off, then on.
	modes := []dataplane.Mode{dataplane.Notify, dataplane.Spin}
	stealSweep := []bool{false}
	durSweep := []bool{false}
	if *durable {
		durSweep = []bool{false, true}
		if note := benchmeta.ScalingNote(runtime.GOMAXPROCS(0), 2,
			"the fsync goroutine time-slices with the workers, so the durable/in-memory ratio overstates the tax a multi-core host pays"); note != "" {
			rep.DurableNote = note
			fmt.Fprintln(os.Stderr, "note:", note)
		}
	}
	if skewing {
		modes = []dataplane.Mode{dataplane.Notify}
		stealSweep = []bool{false, true}
		if note := benchmeta.ScalingNote(runtime.GOMAXPROCS(0), 2,
			"steal-on vs steal-off reflects time-slicing, not cross-bank stealing"); note != "" {
			rep.ScalingNote = note
			fmt.Fprintln(os.Stderr, "note:", note)
		}
	}
	// items/s of the batch=1 cell per tenants x mode point, for speedups,
	// and of the steal-off cell per tenants x batch point.
	baseline := map[string]float64{}
	stealBase := map[string]float64{}
	durBase := map[string]float64{}
	stealWorst := -1.0
	durWorst := -1.0
	for _, tenants := range counts {
		for _, mode := range modes {
			for _, batch := range batches {
				for _, steal := range stealSweep {
					for _, dur := range durSweep {
						cfg.mode = mode
						cfg.maxBatch = batch
						cfg.steal = steal
						cfg.durable = dur
						r, err := measureMedian(tenants, cfg, *trials)
						if err != nil {
							fmt.Fprintln(os.Stderr, "planebench:", err)
							os.Exit(1)
						}
						switch {
						case injecting:
							fmt.Printf("%8d %10s %6d %14.0f %14.0f %12v %12v  panics=%d errors=%d dropped=%d quarantined=%d restarts=%d\n",
								tenants, mode, batch, r.healthyThr, r.faultyThr, r.p50, r.p99,
								r.stats.Panics, r.stats.Errors, r.stats.Dropped, r.stats.Quarantined, r.stats.Restarts)
						case skewing:
							fmt.Printf("%8d %10s %6d %6v %14.0f %12v %12v\n", tenants, mode, batch, steal, r.healthyThr, r.p50, r.p99)
						case *durable:
							fmt.Printf("%8d %10s %6d %8v %14.0f %12v %12v\n", tenants, mode, batch, dur, r.healthyThr, r.p50, r.p99)
						default:
							fmt.Printf("%8d %10s %6d %14.0f %12v %12v\n", tenants, mode, batch, r.healthyThr, r.p50, r.p99)
						}
						cell := benchCell{
							Tenants:     tenants,
							Mode:        mode.String(),
							MaxBatch:    batch,
							ItemsPerSec: r.healthyThr + r.faultyThr,
							P50Ns:       r.p50.Nanoseconds(),
							P99Ns:       r.p99.Nanoseconds(),
						}
						if skewing {
							cell.Workers = cfg.workers
							cell.Skew = cfg.skew
							cell.Seed = cfg.zipfSeed
							cell.Steal = steal
						}
						key := fmt.Sprintf("%d/%s/%v/%v", tenants, mode, steal, dur)
						if batch == 1 {
							baseline[key] = cell.ItemsPerSec
						} else if base := baseline[key]; base > 0 {
							cell.SpeedupVsItem = cell.ItemsPerSec / base
						}
						pointKey := fmt.Sprintf("%d/%d", tenants, batch)
						if !steal {
							stealBase[pointKey] = cell.ItemsPerSec
						} else if off := stealBase[pointKey]; off > 0 {
							cell.SpeedupSteal = cell.ItemsPerSec / off
							if stealWorst < 0 || cell.SpeedupSteal < stealWorst {
								stealWorst = cell.SpeedupSteal
							}
							fmt.Fprintf(os.Stderr, "steal speedup %s: %.2fx\n", pointKey, cell.SpeedupSteal)
						}
						durKey := fmt.Sprintf("%d/%s/%d", tenants, mode, batch)
						if !dur {
							durBase[durKey] = cell.ItemsPerSec
						} else {
							cell.Durable = true
							if mem := durBase[durKey]; mem > 0 {
								cell.DurableVsMemory = cell.ItemsPerSec / mem
								if batch >= 64 && (durWorst < 0 || cell.DurableVsMemory < durWorst) {
									durWorst = cell.DurableVsMemory
								}
								fmt.Fprintf(os.Stderr, "durability tax %s: %.2fx of in-memory\n", durKey, cell.DurableVsMemory)
							}
						}
						rep.Cells = append(rep.Cells, cell)
					}
				}
			}
		}
	}
	if *stealCheck > 0 {
		switch {
		case rep.ScalingNote != "":
			fmt.Fprintln(os.Stderr, "steal-check skipped:", rep.ScalingNote)
		case stealWorst < *stealCheck:
			fmt.Fprintf(os.Stderr, "planebench: steal-check failed: worst steal-on/steal-off ratio %.2fx < %.2fx\n",
				stealWorst, *stealCheck)
			os.Exit(1)
		default:
			fmt.Fprintf(os.Stderr, "steal-check ok: worst ratio %.2fx >= %.2fx\n", stealWorst, *stealCheck)
		}
	}
	if *durableCheck > 0 {
		switch {
		case rep.DurableNote != "":
			fmt.Fprintln(os.Stderr, "durable-check skipped:", rep.DurableNote)
		case durWorst < 0:
			fmt.Fprintln(os.Stderr, "durable-check skipped: no MaxBatch>=64 durable cell in the sweep")
		case durWorst < *durableCheck:
			fmt.Fprintf(os.Stderr, "planebench: durable-check failed: worst durable/in-memory ratio %.2fx < %.2fx\n",
				durWorst, *durableCheck)
			os.Exit(1)
		default:
			fmt.Fprintf(os.Stderr, "durable-check ok: worst ratio %.2fx >= %.2fx\n", durWorst, *durableCheck)
		}
	}
	writeOut(rep, *outFlag, *merge)
}

// writeOut serializes the report to path; with merge it appends this
// sweep's cells to an existing report's, keeping whichever scaling notes
// are set on either side.
func writeOut(rep benchReport, path string, merge bool) {
	if path == "" {
		return
	}
	if merge {
		if raw, err := os.ReadFile(path); err == nil {
			var old benchReport
			if err := json.Unmarshal(raw, &old); err == nil {
				rep.Cells = append(old.Cells, rep.Cells...)
				if rep.ScalingNote == "" {
					rep.ScalingNote = old.ScalingNote
				}
				if rep.DurableNote == "" {
					rep.DurableNote = old.DurableNote
				}
				if rep.ProportionalityNote == "" {
					rep.ProportionalityNote = old.ProportionalityNote
				}
			}
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "planebench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := benchmeta.WriteFileAtomic(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "planebench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// runLoadSweep measures the power-proportionality curve (the runtime
// analog of the paper's Figs. 11/12). A flood probe on an ungoverned
// Notify plane establishes capacity and the latency reference; each
// listed percentage of that capacity is then offered as a paced rate to
// a spin plane (the always-burning baseline) and a Balanced-governed
// Notify plane, and the CPU-seconds each burns over the window is the
// cell's power proxy. On a proportional plane the governed/spin CPU
// ratio falls with load; a spin plane burns the same CPU at 5% as at
// 100%.
func runLoadSweep(cfg benchConfig, tenants, batch int, pcts []int, propCheck float64, trials int, out string, merge bool) {
	rep := benchReport{
		Host:       benchmeta.Collect(),
		DurationMS: cfg.duration.Milliseconds(),
		Workers:    cfg.workers,
		Producers:  cfg.producers,
	}
	if note := benchmeta.ScalingNote(runtime.GOMAXPROCS(0), 2,
		"producers and workers time-slice one CPU, so cpu_vs_spin reflects scheduler arbitration, not halted cores"); note != "" {
		rep.ProportionalityNote = note
		fmt.Fprintln(os.Stderr, "note:", note)
	} else if _, ok := processCPUSeconds(); !ok {
		rep.ProportionalityNote = "process CPU time unavailable on this platform; cpu_seconds not recorded"
		fmt.Fprintln(os.Stderr, "note:", rep.ProportionalityNote)
	}

	probe := cfg
	probe.mode = dataplane.Notify
	probe.maxBatch = batch
	probe.rate = 0
	r, err := measureMedian(tenants, probe, trials)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planebench:", err)
		os.Exit(1)
	}
	capacity := r.healthyThr + r.faultyThr
	p99Notify := r.p99
	fmt.Printf("capacity probe: %.0f items/s (ungoverned notify flood, p99 %v)\n", capacity, p99Notify)
	fmt.Printf("%5s %-30s %14s %10s %12s %12s %7s\n",
		"load", "mode", "items/s", "cpu_s", "p99", "cpu_vs_spin", "active")

	minPct := pcts[0]
	for _, pc := range pcts {
		if pc < minPct {
			minPct = pc
		}
	}
	worstRatio := -1.0
	for _, pct := range pcts {
		rate := capacity * float64(pct) / 100 / float64(tenants)
		if rate < 1 {
			rate = 1
		}
		runCell := func(c benchConfig) (result, benchCell) {
			r, err := measureMedian(tenants, c, trials)
			if err != nil {
				fmt.Fprintln(os.Stderr, "planebench:", err)
				os.Exit(1)
			}
			return r, benchCell{
				Tenants:       tenants,
				Mode:          r.modeLabel,
				MaxBatch:      batch,
				Workers:       cfg.workers,
				ItemsPerSec:   r.healthyThr + r.faultyThr,
				P50Ns:         r.p50.Nanoseconds(),
				P99Ns:         r.p99.Nanoseconds(),
				LoadPct:       pct,
				RatePerTenant: rate,
				CPUSeconds:    r.cpuSec,
			}
		}
		sc := cfg
		sc.mode = dataplane.Spin
		sc.maxBatch = batch
		sc.rate = rate
		rs, cellS := runCell(sc)
		gc := cfg
		gc.mode = dataplane.Notify
		gc.maxBatch = batch
		gc.rate = rate
		gc.governed = true
		rg, cellG := runCell(gc)
		cellG.Governor = rg.govMode
		cellG.Wait = rg.govWait
		cellG.ActiveWorkers = rg.activeWorkers
		if rs.cpuSec > 0 && rg.cpuSec > 0 {
			cellG.CPUVsSpin = rg.cpuSec / rs.cpuSec
			if pct == minPct {
				worstRatio = cellG.CPUVsSpin
			}
		}
		if pct == 100 && p99Notify > 0 {
			cellG.P99VsNotify = float64(rg.p99) / float64(p99Notify)
		}
		fmt.Printf("%4d%% %-30s %14.0f %10.3f %12v %12s %7d\n",
			pct, cellS.Mode, cellS.ItemsPerSec, cellS.CPUSeconds, rs.p99, "", cfg.workers)
		fmt.Printf("%4d%% %-30s %14.0f %10.3f %12v %12.2f %7d\n",
			pct, cellG.Mode, cellG.ItemsPerSec, cellG.CPUSeconds, rg.p99, cellG.CPUVsSpin, rg.activeWorkers)
		rep.Cells = append(rep.Cells, cellS, cellG)
	}
	if propCheck > 0 {
		switch {
		case rep.ProportionalityNote != "":
			fmt.Fprintln(os.Stderr, "prop-check skipped:", rep.ProportionalityNote)
		case worstRatio < 0:
			fmt.Fprintln(os.Stderr, "prop-check skipped: no cpu_seconds measured at the lowest load point")
		case worstRatio > propCheck:
			fmt.Fprintf(os.Stderr, "planebench: prop-check failed: governed cpu %.2fx of spin at %d%% load > %.2fx\n",
				worstRatio, minPct, propCheck)
			os.Exit(1)
		default:
			fmt.Fprintf(os.Stderr, "prop-check ok: governed cpu %.2fx of spin at %d%% load <= %.2fx\n",
				worstRatio, minPct, propCheck)
		}
	}
	writeOut(rep, out, merge)
}

// benchCell is one measured grid point. SpeedupVsItem compares the cell's
// delivered items/s against the MaxBatch=1 cell of the same tenants x
// mode point (0 when that baseline was not part of the sweep).
type benchCell struct {
	Tenants       int     `json:"tenants"`
	Mode          string  `json:"mode"`
	MaxBatch      int     `json:"max_batch"`
	ItemsPerSec   float64 `json:"items_per_sec"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	SpeedupVsItem float64 `json:"speedup_vs_item,omitempty"`
	// Skewed-load cells (-skew) additionally record the sweep parameters
	// that produced them — the Zipf exponent and sampling seed make the
	// run reproducible — plus the worker count, whether the cross-bank
	// steal path was on, and the steal-on over steal-off throughput ratio
	// of the same tenants x batch point.
	Workers      int     `json:"workers,omitempty"`
	Skew         float64 `json:"skew,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	Steal        bool    `json:"steal,omitempty"`
	SpeedupSteal float64 `json:"speedup_steal_vs_nosteal,omitempty"`
	// Durable cells (-durable) record the durability tax: the cell's
	// items/s as a fraction of the matching in-memory cell's (group
	// commit amortizes the fsync cost, so the ratio should rise with
	// MaxBatch).
	Durable         bool    `json:"durable,omitempty"`
	DurableVsMemory float64 `json:"durable_vs_memory,omitempty"`
	// Proportionality cells (-loadsweep) record the offered load as a
	// percentage of measured flood capacity, the paced per-tenant rate
	// that realizes it, and the CPU-seconds the whole process burned over
	// the window. Governed cells additionally record the governor mode,
	// the live wait strategy, the active worker count at window end, their
	// CPU burn as a fraction of the spin baseline's at the same load, and
	// (at 100% load) their p99 as a fraction of the ungoverned Notify
	// probe's.
	LoadPct       int     `json:"load_pct,omitempty"`
	RatePerTenant float64 `json:"rate_per_tenant,omitempty"`
	CPUSeconds    float64 `json:"cpu_seconds,omitempty"`
	CPUVsSpin     float64 `json:"cpu_vs_spin,omitempty"`
	P99VsNotify   float64 `json:"p99_vs_notify,omitempty"`
	Governor      string  `json:"governor,omitempty"`
	Wait          string  `json:"wait,omitempty"`
	ActiveWorkers int     `json:"active_workers,omitempty"`
}

type benchReport struct {
	benchmeta.Host
	DurationMS int64 `json:"duration_ms_per_cell"`
	Workers    int   `json:"workers"`
	Producers  int   `json:"producers_per_tenant"`
	// ScalingNote is set when the host cannot exhibit the steal speedup
	// (-skew on a single schedulable core): the on/off ratio then measures
	// OS time-slicing, not cross-bank stealing.
	ScalingNote string `json:"scaling_note,omitempty"`
	// DurableNote is the same caveat for the -durable sweep: on one
	// schedulable core the WAL's fsync goroutine steals worker time, so
	// the measured tax is an upper bound.
	DurableNote string `json:"durable_scaling_note,omitempty"`
	// ProportionalityNote is the -loadsweep caveat: on one schedulable
	// core (or without rusage) cpu_vs_spin does not measure halted cores.
	ProportionalityNote string      `json:"proportionality_note,omitempty"`
	Cells               []benchCell `json:"cells"`
}

type result struct {
	healthyThr float64 // items/s delivered to healthy tenants (all, when no injection)
	faultyThr  float64 // items/s delivered to faulty tenants
	p50, p99   time.Duration
	stats      dataplane.Stats

	// Proportionality-sweep observations: process CPU burned over the
	// window, the plane's operating-point label, and — on governed
	// planes — the governor mode, live wait strategy, and active worker
	// count at window end.
	cpuSec        float64
	modeLabel     string
	govMode       string
	govWait       string
	activeWorkers int
}

// measureMedian repeats measure and returns the trial with the median
// total items/s. Median, not best: on a loaded or single-core host an
// individual run can swing either way, and the median is the honest
// steady-state figure.
func measureMedian(tenants int, cfg benchConfig, trials int) (result, error) {
	if trials <= 1 {
		return measure(tenants, cfg)
	}
	rs := make([]result, trials)
	for t := range rs {
		r, err := measure(tenants, cfg)
		if err != nil {
			return result{}, err
		}
		rs[t] = r
	}
	sort.Slice(rs, func(i, j int) bool {
		return rs[i].healthyThr+rs[i].faultyThr < rs[j].healthyThr+rs[j].faultyThr
	})
	return rs[trials/2], nil
}

func measure(tenants int, cfg benchConfig) (result, error) {
	// Faulty set: the first ceil(frac*tenants) tenant ids.
	nFaulty := 0
	if cfg.faultFrac > 0 {
		nFaulty = int(cfg.faultFrac*float64(tenants) + 0.999999)
		if nFaulty > tenants {
			nFaulty = tenants
		}
	}
	var inj *fault.Injector
	var handler dataplane.Handler
	if nFaulty > 0 {
		faulty := make([]int, nFaulty)
		for i := range faulty {
			faulty[i] = i
		}
		var err error
		inj, err = fault.New(fault.Config{
			Seed:           cfg.seed,
			Tenants:        tenants,
			Faulty:         faulty,
			PanicEvery:     cfg.panicEvery,
			ErrorEvery:     cfg.errorEvery,
			SpikeEvery:     cfg.spikeEvery,
			Spike:          cfg.spike,
			StallConsumers: cfg.stall,
		})
		if err != nil {
			return result{}, err
		}
		handler = dataplane.Handler(inj.Wrap(func(tenant int, payload []byte) ([]byte, error) {
			return payload, nil
		}))
	}

	var batchHandler dataplane.BatchHandler
	if cfg.maxBatch > 1 && inj == nil {
		// Pass-through batch handler: exercises the zero-allocation batch
		// dispatch path. With injection the per-item replay semantics are
		// the point, so leave it unset.
		batchHandler = func(int, [][]byte) error { return nil }
	}
	var tel *telemetry.T
	if cfg.metrics != nil {
		var err error
		tel, err = telemetry.New(telemetry.Config{Tenants: tenants, Workers: cfg.workers})
		if err != nil {
			return result{}, err
		}
	}
	var durDir string
	if cfg.durable {
		var err error
		durDir, err = os.MkdirTemp("", "planebench-wal-")
		if err != nil {
			return result{}, err
		}
		defer os.RemoveAll(durDir)
	}
	p, err := dataplane.New(dataplane.Config{
		Tenants:         tenants,
		Workers:         cfg.workers,
		RingCapacity:    cfg.capacity,
		Mode:            cfg.mode,
		Policy:          cfg.policy,
		Handler:         handler,
		BatchHandler:    batchHandler,
		MaxBatch:        cfg.maxBatch,
		SharedIngress:   cfg.producers > 1,
		Steal:           cfg.steal,
		Delivery:        cfg.delivery,
		DeliveryTimeout: cfg.deliverTO,
		Quarantine:      dataplane.QuarantineConfig{Threshold: cfg.quarantine},
		Telemetry:       tel,
		Durable:         dataplane.DurableConfig{Dir: durDir},
		Governor:        dataplane.GovernorConfig{Enable: cfg.governed},
	})
	if err != nil {
		return result{}, err
	}
	p.Start()
	defer p.Stop()
	if cfg.metrics != nil {
		cfg.metrics.cur.Store(tel)
		defer cfg.metrics.cur.CompareAndSwap(tel, nil)
	}

	var stop atomic.Bool
	var healthyConsumed, faultyConsumed atomic.Int64
	var latMu sync.Mutex
	var lats []time.Duration

	nProducers := cfg.producers
	if nProducers < 1 {
		nProducers = 1
	}
	var wg sync.WaitGroup
	if cfg.skew > 0 {
		// Skewed tenant load: a shared pool of nProducers goroutines, each
		// with its own deterministic Zipf stream (seed + pool index), picks
		// the target tenant per item. Backpressure on a hot tenant's ring
		// resamples instead of spinning on it — a blocked producer should
		// offer load to the rest of the distribution, the way a NIC keeps
		// delivering other flows while one queue is full. -rate is ignored
		// (skew mode measures saturation).
		for pi := 0; pi < nProducers; pi++ {
			wg.Add(1)
			go func(pi int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.zipfSeed + int64(pi)))
				zipf := rand.NewZipf(rng, cfg.skew, 1, uint64(tenants-1))
				for !stop.Load() {
					if !p.Ingress(int(zipf.Uint64()), stampedPayload()) {
						runtime.Gosched()
					}
				}
			}(pi)
		}
	}
	// nProducers producers + one tenant consumer per tenant (skew mode:
	// pool producers above, consumers only here).
	for tn := 0; tn < tenants; tn++ {
		var pace time.Duration
		if cfg.rate > 0 {
			pace = time.Duration(float64(time.Second) / cfg.rate * float64(nProducers))
		}
		perTenantProducers := nProducers
		if cfg.skew > 0 {
			perTenantProducers = 0
		}
		for pr := 0; pr < perTenantProducers; pr++ {
			wg.Add(1)
			go func(tn int) {
				defer wg.Done()
				if cfg.maxBatch <= 1 {
					for !stop.Load() {
						if !p.Ingress(tn, stampedPayload()) {
							time.Sleep(5 * time.Microsecond)
							continue
						}
						if pace > 0 {
							time.Sleep(pace)
						}
					}
					return
				}
				// Batched ingress: one IngressBatch per burst; the accepted
				// count is a prefix, so resubmit the remainder.
				items := make([]dataplane.IngressItem, cfg.maxBatch)
				for !stop.Load() {
					for k := range items {
						items[k] = dataplane.IngressItem{Tenant: tn, Payload: stampedPayload()}
					}
					sent := 0
					for sent < len(items) && !stop.Load() {
						n := p.IngressBatch(items[sent:])
						if n == 0 {
							time.Sleep(5 * time.Microsecond)
							continue
						}
						sent += n
					}
					if pace > 0 {
						time.Sleep(pace * time.Duration(len(items)))
					}
				}
			}(tn)
		}
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			faulty := inj != nil && inj.Faulty(tn)
			count := func(n int) {
				if faulty {
					faultyConsumed.Add(int64(n))
				} else {
					healthyConsumed.Add(int64(n))
				}
			}
			if cfg.maxBatch > 1 {
				// Batched egress: block for the first item, then drain the
				// backlog in one EgressBatch — batching without burning the
				// CPU polling an empty delivery ring.
				dst := make([][]byte, cfg.maxBatch)
				for {
					if inj != nil && inj.Stalled(tn) {
						if stop.Load() {
							return
						}
						time.Sleep(100 * time.Microsecond)
						continue
					}
					out, ok := p.EgressWait(tn)
					if !ok {
						return
					}
					n := p.EgressBatch(tn, dst)
					count(n + 1)
					now := time.Now()
					latMu.Lock()
					if len(lats) < 2_000_000 {
						lats = append(lats, now.Sub(timeFrom(out)))
					}
					for _, v := range dst[:n] {
						if len(lats) < 2_000_000 {
							lats = append(lats, now.Sub(timeFrom(v)))
						}
					}
					latMu.Unlock()
					if stop.Load() {
						return
					}
				}
			}
			for {
				if inj != nil && inj.Stalled(tn) {
					if stop.Load() {
						return
					}
					time.Sleep(100 * time.Microsecond)
					continue
				}
				out, ok := p.EgressWait(tn)
				if !ok {
					return
				}
				d := time.Since(timeFrom(out))
				count(1)
				latMu.Lock()
				if len(lats) < 2_000_000 {
					lats = append(lats, d)
				}
				latMu.Unlock()
				if stop.Load() {
					return
				}
			}
		}(tn)
	}

	start := time.Now()
	cpu0, cpuOK := processCPUSeconds()
	time.Sleep(cfg.duration)
	cpu1, _ := processCPUSeconds()
	modeLabel := p.ModeString()
	active := p.ActiveWorkers()
	var govMode, govWait string
	if gs, ok := p.GovernorStatus(); ok {
		govMode, govWait = gs.Mode.String(), gs.Wait.String()
	}
	stop.Store(true)
	elapsed := time.Since(start)
	st := p.Stats()
	p.Stop() // closes tenant notifiers, unblocking EgressWait
	wg.Wait()

	latMu.Lock()
	defer latMu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	res := result{
		healthyThr:    float64(healthyConsumed.Load()) / elapsed.Seconds(),
		faultyThr:     float64(faultyConsumed.Load()) / elapsed.Seconds(),
		p50:           pct(0.50),
		p99:           pct(0.99),
		stats:         st,
		modeLabel:     modeLabel,
		govMode:       govMode,
		govWait:       govWait,
		activeWorkers: active,
	}
	if cpuOK {
		res.cpuSec = cpu1 - cpu0
	}
	return res, nil
}

// stampedPayload returns a fresh 8-byte payload carrying time.Now, the
// round-trip latency probe.
func stampedPayload() []byte {
	payload := make([]byte, 8)
	for i, b := range timeBytes(time.Now()) {
		payload[i] = b
	}
	return payload
}

func timeBytes(t time.Time) [8]byte {
	n := t.UnixNano()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(n >> (8 * i))
	}
	return b
}

func timeFrom(b []byte) time.Time {
	var n int64
	for i := 0; i < 8 && i < len(b); i++ {
		n |= int64(b[i]) << (8 * i)
	}
	return time.Unix(0, n)
}

// Command planebench measures the real dataplane runtime on real hardware:
// sustained throughput and round-trip latency of QWAIT-notified workers vs
// spin-polling workers across tenant counts — the software analogue of the
// paper's Fig. 8 comparison, without the simulator.
//
// Example:
//
//	planebench -tenants 8,64,256 -duration 2s
//
// With the fault harness it also measures tenant isolation: a fraction of
// tenants is injected with handler panics/errors/latency spikes and stalled
// consumers, and throughput is reported separately for healthy and faulty
// tenants so the isolation cost is visible directly:
//
//	planebench -tenants 64 -faulty 0.25 -panic-every 1 -stall \
//	           -drop drop-newest -quarantine 3
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane"
	"hyperplane/dataplane"
	"hyperplane/internal/fault"
)

type benchConfig struct {
	workers    int
	capacity   int
	mode       dataplane.Mode
	duration   time.Duration
	rate       float64
	policy     hyperplane.Policy
	delivery   dataplane.DeliveryPolicy
	deliverTO  time.Duration
	quarantine int

	// fault plan (nil faultCfg = no injection)
	faultFrac  float64
	seed       int64
	panicEvery int
	errorEvery int
	spikeEvery int
	spike      time.Duration
	stall      bool
}

func main() {
	var (
		tenantsFlag = flag.String("tenants", "8,64,256", "comma-separated tenant counts to sweep")
		workers     = flag.Int("workers", 1, "data plane workers")
		duration    = flag.Duration("duration", 2*time.Second, "measurement window per point")
		capacity    = flag.Int("cap", 1024, "ring capacity (power of two)")
		rate        = flag.Float64("rate", 0, "paced ingress per tenant (items/s); 0 = flood (saturation)")
		policyFlag  = flag.String("policy", "rr", "Notify-mode service policy: rr | wrr | strict | drr | ewma")

		dropFlag   = flag.String("drop", "block", "delivery policy: block, drop-newest, drop-oldest")
		deliverTO  = flag.Duration("delivery-timeout", 0, "Block-policy per-item delivery deadline (0 = unbounded)")
		quarantine = flag.Int("quarantine", 0, "quarantine after N consecutive tenant failures (0 = off)")

		faultFrac  = flag.Float64("faulty", 0, "fraction of tenants injected faulty (0 = no injection)")
		faultSeed  = flag.Int64("fault-seed", 1, "fault plan seed")
		panicEvery = flag.Int("panic-every", 0, "panic every Nth item of a faulty tenant (0 = never)")
		errorEvery = flag.Int("error-every", 0, "fail every Nth item of a faulty tenant (0 = never)")
		spikeEvery = flag.Int("spike-every", 0, "latency-spike every Nth item of a faulty tenant (0 = never)")
		spike      = flag.Duration("spike", time.Millisecond, "injected handler latency per spike")
		stall      = flag.Bool("stall", false, "stall faulty tenants' consumers (dead delivery rings)")
	)
	flag.Parse()

	var counts []int
	for _, part := range strings.Split(*tenantsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "planebench: bad tenant count %q\n", part)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	pol, err := hyperplane.ParsePolicy(*policyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planebench: unknown -policy %q\n", *policyFlag)
		os.Exit(2)
	}

	var delivery dataplane.DeliveryPolicy
	switch *dropFlag {
	case "block":
		delivery = dataplane.Block
	case "drop-newest":
		delivery = dataplane.DropNewest
	case "drop-oldest":
		delivery = dataplane.DropOldest
	default:
		fmt.Fprintf(os.Stderr, "planebench: bad -drop %q\n", *dropFlag)
		os.Exit(2)
	}

	cfg := benchConfig{
		workers:    *workers,
		capacity:   *capacity,
		duration:   *duration,
		rate:       *rate,
		policy:     pol,
		delivery:   delivery,
		deliverTO:  *deliverTO,
		quarantine: *quarantine,
		faultFrac:  *faultFrac,
		seed:       *faultSeed,
		panicEvery: *panicEvery,
		errorEvery: *errorEvery,
		spikeEvery: *spikeEvery,
		spike:      *spike,
		stall:      *stall,
	}

	injecting := cfg.faultFrac > 0
	if injecting {
		fmt.Printf("%8s %10s %14s %14s %12s %12s  %s\n",
			"tenants", "mode", "healthy/s", "faulty/s", "p50", "p99", "plane stats")
	} else {
		fmt.Printf("%8s %10s %14s %12s %12s\n", "tenants", "mode", "items/s", "p50", "p99")
	}
	for _, tenants := range counts {
		for _, mode := range []dataplane.Mode{dataplane.Notify, dataplane.Spin} {
			cfg.mode = mode
			r, err := measure(tenants, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "planebench:", err)
				os.Exit(1)
			}
			if injecting {
				fmt.Printf("%8d %10s %14.0f %14.0f %12v %12v  panics=%d errors=%d dropped=%d quarantined=%d restarts=%d\n",
					tenants, mode, r.healthyThr, r.faultyThr, r.p50, r.p99,
					r.stats.Panics, r.stats.Errors, r.stats.Dropped, r.stats.Quarantined, r.stats.Restarts)
			} else {
				fmt.Printf("%8d %10s %14.0f %12v %12v\n", tenants, mode, r.healthyThr, r.p50, r.p99)
			}
		}
	}
}

type result struct {
	healthyThr float64 // items/s delivered to healthy tenants (all, when no injection)
	faultyThr  float64 // items/s delivered to faulty tenants
	p50, p99   time.Duration
	stats      dataplane.Stats
}

func measure(tenants int, cfg benchConfig) (result, error) {
	// Faulty set: the first ceil(frac*tenants) tenant ids.
	nFaulty := 0
	if cfg.faultFrac > 0 {
		nFaulty = int(cfg.faultFrac*float64(tenants) + 0.999999)
		if nFaulty > tenants {
			nFaulty = tenants
		}
	}
	var inj *fault.Injector
	var handler dataplane.Handler
	if nFaulty > 0 {
		faulty := make([]int, nFaulty)
		for i := range faulty {
			faulty[i] = i
		}
		var err error
		inj, err = fault.New(fault.Config{
			Seed:           cfg.seed,
			Tenants:        tenants,
			Faulty:         faulty,
			PanicEvery:     cfg.panicEvery,
			ErrorEvery:     cfg.errorEvery,
			SpikeEvery:     cfg.spikeEvery,
			Spike:          cfg.spike,
			StallConsumers: cfg.stall,
		})
		if err != nil {
			return result{}, err
		}
		handler = dataplane.Handler(inj.Wrap(func(tenant int, payload []byte) ([]byte, error) {
			return payload, nil
		}))
	}

	p, err := dataplane.New(dataplane.Config{
		Tenants:         tenants,
		Workers:         cfg.workers,
		RingCapacity:    cfg.capacity,
		Mode:            cfg.mode,
		Policy:          cfg.policy,
		Handler:         handler,
		Delivery:        cfg.delivery,
		DeliveryTimeout: cfg.deliverTO,
		Quarantine:      dataplane.QuarantineConfig{Threshold: cfg.quarantine},
	})
	if err != nil {
		return result{}, err
	}
	p.Start()
	defer p.Stop()

	var stop atomic.Bool
	var healthyConsumed, faultyConsumed atomic.Int64
	var latMu sync.Mutex
	var lats []time.Duration

	var wg sync.WaitGroup
	// One producer + one tenant consumer per tenant.
	for tn := 0; tn < tenants; tn++ {
		wg.Add(2)
		go func(tn int) {
			defer wg.Done()
			var pace time.Duration
			if cfg.rate > 0 {
				pace = time.Duration(float64(time.Second) / cfg.rate)
			}
			for !stop.Load() {
				now := time.Now()
				payload := make([]byte, 8)
				for i, b := range timeBytes(now) {
					payload[i] = b
				}
				if !p.Ingress(tn, payload) {
					time.Sleep(5 * time.Microsecond)
					continue
				}
				if pace > 0 {
					time.Sleep(pace)
				}
			}
		}(tn)
		go func(tn int) {
			defer wg.Done()
			faulty := inj != nil && inj.Faulty(tn)
			for {
				if inj != nil && inj.Stalled(tn) {
					if stop.Load() {
						return
					}
					time.Sleep(100 * time.Microsecond)
					continue
				}
				out, ok := p.EgressWait(tn)
				if !ok {
					return
				}
				d := time.Since(timeFrom(out))
				if faulty {
					faultyConsumed.Add(1)
				} else {
					healthyConsumed.Add(1)
				}
				latMu.Lock()
				if len(lats) < 2_000_000 {
					lats = append(lats, d)
				}
				latMu.Unlock()
				if stop.Load() {
					return
				}
			}
		}(tn)
	}

	start := time.Now()
	time.Sleep(cfg.duration)
	stop.Store(true)
	elapsed := time.Since(start)
	st := p.Stats()
	p.Stop() // closes tenant notifiers, unblocking EgressWait
	wg.Wait()

	latMu.Lock()
	defer latMu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	return result{
		healthyThr: float64(healthyConsumed.Load()) / elapsed.Seconds(),
		faultyThr:  float64(faultyConsumed.Load()) / elapsed.Seconds(),
		p50:        pct(0.50),
		p99:        pct(0.99),
		stats:      st,
	}, nil
}

func timeBytes(t time.Time) [8]byte {
	n := t.UnixNano()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(n >> (8 * i))
	}
	return b
}

func timeFrom(b []byte) time.Time {
	var n int64
	for i := 0; i < 8 && i < len(b); i++ {
		n |= int64(b[i]) << (8 * i)
	}
	return time.Unix(0, n)
}

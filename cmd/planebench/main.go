// Command planebench measures the real dataplane runtime on real hardware:
// sustained throughput and round-trip latency of QWAIT-notified workers vs
// spin-polling workers across tenant counts — the software analogue of the
// paper's Fig. 8 comparison, without the simulator.
//
// Example:
//
//	planebench -tenants 8,64,256 -duration 2s
//
// With the fault harness it also measures tenant isolation: a fraction of
// tenants is injected with handler panics/errors/latency spikes and stalled
// consumers, and throughput is reported separately for healthy and faulty
// tenants so the isolation cost is visible directly:
//
//	planebench -tenants 64 -faulty 0.25 -panic-every 1 -stall \
//	           -drop drop-newest -quarantine 3
//
// The batched data path is swept with -batch (MaxBatch values; 1 = the
// per-item baseline) and -producers (ingress goroutines per tenant; >1
// switches the tenant rings to the shared MPSC variant). -out records the
// whole grid as JSON (BENCH_dataplane.json via `make bench`), including
// the batched-over-per-item speedup per tenants x mode point:
//
//	planebench -tenants 8,64 -batch 1,16 -producers 4 -out BENCH_dataplane.json
//
// -metrics-addr attaches a telemetry plane to every measured cell and
// serves the live cell's export endpoint (/metrics, /debug/tenants,
// /debug/pprof) for the duration of the sweep, so a long run can be
// watched from a browser or scraped by Prometheus:
//
//	planebench -tenants 256 -duration 60s -metrics-addr :9090
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane"
	"hyperplane/dataplane"
	"hyperplane/internal/benchmeta"
	"hyperplane/internal/fault"
	"hyperplane/internal/telemetry"
)

type benchConfig struct {
	workers    int
	capacity   int
	mode       dataplane.Mode
	duration   time.Duration
	rate       float64
	policy     hyperplane.Policy
	delivery   dataplane.DeliveryPolicy
	deliverTO  time.Duration
	quarantine int
	maxBatch   int // MaxBatch for the plane; 1 pins the per-item path
	producers  int // ingress goroutines per tenant; >1 => SharedIngress

	// fault plan (nil faultCfg = no injection)
	faultFrac  float64
	seed       int64
	panicEvery int
	errorEvery int
	spikeEvery int
	spike      time.Duration
	stall      bool

	// non-nil when -metrics-addr is set: each cell attaches a telemetry
	// plane and publishes it here while it measures
	metrics *metricsProxy
}

// metricsProxy serves the telemetry plane of whichever grid cell is
// currently measuring. Each measure() call builds a fresh dataplane (and
// with it a fresh telemetry plane), so a fixed -metrics-addr endpoint
// forwards to the live one and answers 503 between cells.
type metricsProxy struct {
	cur atomic.Pointer[telemetry.T]
}

func (mp *metricsProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t := mp.cur.Load()
	if t == nil {
		http.Error(w, "no cell measuring", http.StatusServiceUnavailable)
		return
	}
	t.Handler().ServeHTTP(w, r)
}

func main() {
	var (
		tenantsFlag = flag.String("tenants", "8,64,256", "comma-separated tenant counts to sweep")
		workers     = flag.Int("workers", 1, "data plane workers")
		duration    = flag.Duration("duration", 2*time.Second, "measurement window per point")
		capacity    = flag.Int("cap", 1024, "ring capacity (power of two)")
		rate        = flag.Float64("rate", 0, "paced ingress per tenant (items/s); 0 = flood (saturation)")
		policyFlag  = flag.String("policy", "rr", "Notify-mode service policy: rr | wrr | strict | drr | ewma")

		dropFlag   = flag.String("drop", "block", "delivery policy: block, drop-newest, drop-oldest")
		deliverTO  = flag.Duration("delivery-timeout", 0, "Block-policy per-item delivery deadline (0 = unbounded)")
		quarantine = flag.Int("quarantine", 0, "quarantine after N consecutive tenant failures (0 = off)")

		faultFrac  = flag.Float64("faulty", 0, "fraction of tenants injected faulty (0 = no injection)")
		faultSeed  = flag.Int64("fault-seed", 1, "fault plan seed")
		panicEvery = flag.Int("panic-every", 0, "panic every Nth item of a faulty tenant (0 = never)")
		errorEvery = flag.Int("error-every", 0, "fail every Nth item of a faulty tenant (0 = never)")
		spikeEvery = flag.Int("spike-every", 0, "latency-spike every Nth item of a faulty tenant (0 = never)")
		spike      = flag.Duration("spike", time.Millisecond, "injected handler latency per spike")
		stall      = flag.Bool("stall", false, "stall faulty tenants' consumers (dead delivery rings)")

		batchFlag = flag.String("batch", "1,16", "comma-separated MaxBatch values to sweep (1 = per-item baseline)")
		producers = flag.Int("producers", 1, "ingress goroutines per tenant (>1 switches to shared MPSC ingress rings)")
		trials    = flag.Int("trials", 1, "runs per cell; the median by items/s is reported")
		outFlag   = flag.String("out", "", "write the measured grid as JSON (BENCH_dataplane.json) to this path")

		metricsAddr = flag.String("metrics-addr", "",
			"serve the measuring cell's telemetry plane (/metrics, /debug/tenants, pprof) on this address")
	)
	flag.Parse()

	parseInts := func(flagName, s string) []int {
		var out []int
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "planebench: bad %s entry %q\n", flagName, part)
				os.Exit(2)
			}
			out = append(out, n)
		}
		return out
	}
	counts := parseInts("-tenants", *tenantsFlag)
	batches := parseInts("-batch", *batchFlag)

	pol, err := hyperplane.ParsePolicy(*policyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planebench: unknown -policy %q\n", *policyFlag)
		os.Exit(2)
	}

	var delivery dataplane.DeliveryPolicy
	switch *dropFlag {
	case "block":
		delivery = dataplane.Block
	case "drop-newest":
		delivery = dataplane.DropNewest
	case "drop-oldest":
		delivery = dataplane.DropOldest
	default:
		fmt.Fprintf(os.Stderr, "planebench: bad -drop %q\n", *dropFlag)
		os.Exit(2)
	}

	cfg := benchConfig{
		workers:    *workers,
		capacity:   *capacity,
		duration:   *duration,
		rate:       *rate,
		policy:     pol,
		delivery:   delivery,
		deliverTO:  *deliverTO,
		quarantine: *quarantine,
		faultFrac:  *faultFrac,
		seed:       *faultSeed,
		panicEvery: *panicEvery,
		errorEvery: *errorEvery,
		spikeEvery: *spikeEvery,
		spike:      *spike,
		stall:      *stall,
	}

	cfg.producers = *producers

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "planebench: -metrics-addr: %v\n", err)
			os.Exit(2)
		}
		cfg.metrics = &metricsProxy{}
		go func() { _ = http.Serve(ln, cfg.metrics) }()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", ln.Addr())
	}

	injecting := cfg.faultFrac > 0
	if injecting {
		fmt.Printf("%8s %10s %6s %14s %14s %12s %12s  %s\n",
			"tenants", "mode", "batch", "healthy/s", "faulty/s", "p50", "p99", "plane stats")
	} else {
		fmt.Printf("%8s %10s %6s %14s %12s %12s\n", "tenants", "mode", "batch", "items/s", "p50", "p99")
	}
	rep := benchReport{
		Host:       benchmeta.Collect(),
		DurationMS: cfg.duration.Milliseconds(),
		Workers:    cfg.workers,
		Producers:  cfg.producers,
	}
	// items/s of the batch=1 cell per tenants x mode point, for speedups.
	baseline := map[string]float64{}
	for _, tenants := range counts {
		for _, mode := range []dataplane.Mode{dataplane.Notify, dataplane.Spin} {
			for _, batch := range batches {
				cfg.mode = mode
				cfg.maxBatch = batch
				r, err := measureMedian(tenants, cfg, *trials)
				if err != nil {
					fmt.Fprintln(os.Stderr, "planebench:", err)
					os.Exit(1)
				}
				if injecting {
					fmt.Printf("%8d %10s %6d %14.0f %14.0f %12v %12v  panics=%d errors=%d dropped=%d quarantined=%d restarts=%d\n",
						tenants, mode, batch, r.healthyThr, r.faultyThr, r.p50, r.p99,
						r.stats.Panics, r.stats.Errors, r.stats.Dropped, r.stats.Quarantined, r.stats.Restarts)
				} else {
					fmt.Printf("%8d %10s %6d %14.0f %12v %12v\n", tenants, mode, batch, r.healthyThr, r.p50, r.p99)
				}
				cell := benchCell{
					Tenants:     tenants,
					Mode:        mode.String(),
					MaxBatch:    batch,
					ItemsPerSec: r.healthyThr + r.faultyThr,
					P50Ns:       r.p50.Nanoseconds(),
					P99Ns:       r.p99.Nanoseconds(),
				}
				key := fmt.Sprintf("%d/%s", tenants, mode)
				if batch == 1 {
					baseline[key] = cell.ItemsPerSec
				} else if base := baseline[key]; base > 0 {
					cell.SpeedupVsItem = cell.ItemsPerSec / base
				}
				rep.Cells = append(rep.Cells, cell)
			}
		}
	}
	if *outFlag != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "planebench:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*outFlag, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "planebench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outFlag)
	}
}

// benchCell is one measured grid point. SpeedupVsItem compares the cell's
// delivered items/s against the MaxBatch=1 cell of the same tenants x
// mode point (0 when that baseline was not part of the sweep).
type benchCell struct {
	Tenants       int     `json:"tenants"`
	Mode          string  `json:"mode"`
	MaxBatch      int     `json:"max_batch"`
	ItemsPerSec   float64 `json:"items_per_sec"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	SpeedupVsItem float64 `json:"speedup_vs_item,omitempty"`
}

type benchReport struct {
	benchmeta.Host
	DurationMS int64       `json:"duration_ms_per_cell"`
	Workers    int         `json:"workers"`
	Producers  int         `json:"producers_per_tenant"`
	Cells      []benchCell `json:"cells"`
}

type result struct {
	healthyThr float64 // items/s delivered to healthy tenants (all, when no injection)
	faultyThr  float64 // items/s delivered to faulty tenants
	p50, p99   time.Duration
	stats      dataplane.Stats
}

// measureMedian repeats measure and returns the trial with the median
// total items/s. Median, not best: on a loaded or single-core host an
// individual run can swing either way, and the median is the honest
// steady-state figure.
func measureMedian(tenants int, cfg benchConfig, trials int) (result, error) {
	if trials <= 1 {
		return measure(tenants, cfg)
	}
	rs := make([]result, trials)
	for t := range rs {
		r, err := measure(tenants, cfg)
		if err != nil {
			return result{}, err
		}
		rs[t] = r
	}
	sort.Slice(rs, func(i, j int) bool {
		return rs[i].healthyThr+rs[i].faultyThr < rs[j].healthyThr+rs[j].faultyThr
	})
	return rs[trials/2], nil
}

func measure(tenants int, cfg benchConfig) (result, error) {
	// Faulty set: the first ceil(frac*tenants) tenant ids.
	nFaulty := 0
	if cfg.faultFrac > 0 {
		nFaulty = int(cfg.faultFrac*float64(tenants) + 0.999999)
		if nFaulty > tenants {
			nFaulty = tenants
		}
	}
	var inj *fault.Injector
	var handler dataplane.Handler
	if nFaulty > 0 {
		faulty := make([]int, nFaulty)
		for i := range faulty {
			faulty[i] = i
		}
		var err error
		inj, err = fault.New(fault.Config{
			Seed:           cfg.seed,
			Tenants:        tenants,
			Faulty:         faulty,
			PanicEvery:     cfg.panicEvery,
			ErrorEvery:     cfg.errorEvery,
			SpikeEvery:     cfg.spikeEvery,
			Spike:          cfg.spike,
			StallConsumers: cfg.stall,
		})
		if err != nil {
			return result{}, err
		}
		handler = dataplane.Handler(inj.Wrap(func(tenant int, payload []byte) ([]byte, error) {
			return payload, nil
		}))
	}

	var batchHandler dataplane.BatchHandler
	if cfg.maxBatch > 1 && inj == nil {
		// Pass-through batch handler: exercises the zero-allocation batch
		// dispatch path. With injection the per-item replay semantics are
		// the point, so leave it unset.
		batchHandler = func(int, [][]byte) error { return nil }
	}
	var tel *telemetry.T
	if cfg.metrics != nil {
		var err error
		tel, err = telemetry.New(telemetry.Config{Tenants: tenants, Workers: cfg.workers})
		if err != nil {
			return result{}, err
		}
	}
	p, err := dataplane.New(dataplane.Config{
		Tenants:         tenants,
		Workers:         cfg.workers,
		RingCapacity:    cfg.capacity,
		Mode:            cfg.mode,
		Policy:          cfg.policy,
		Handler:         handler,
		BatchHandler:    batchHandler,
		MaxBatch:        cfg.maxBatch,
		SharedIngress:   cfg.producers > 1,
		Delivery:        cfg.delivery,
		DeliveryTimeout: cfg.deliverTO,
		Quarantine:      dataplane.QuarantineConfig{Threshold: cfg.quarantine},
		Telemetry:       tel,
	})
	if err != nil {
		return result{}, err
	}
	p.Start()
	defer p.Stop()
	if cfg.metrics != nil {
		cfg.metrics.cur.Store(tel)
		defer cfg.metrics.cur.CompareAndSwap(tel, nil)
	}

	var stop atomic.Bool
	var healthyConsumed, faultyConsumed atomic.Int64
	var latMu sync.Mutex
	var lats []time.Duration

	nProducers := cfg.producers
	if nProducers < 1 {
		nProducers = 1
	}
	var wg sync.WaitGroup
	// nProducers producers + one tenant consumer per tenant.
	for tn := 0; tn < tenants; tn++ {
		var pace time.Duration
		if cfg.rate > 0 {
			pace = time.Duration(float64(time.Second) / cfg.rate * float64(nProducers))
		}
		for pr := 0; pr < nProducers; pr++ {
			wg.Add(1)
			go func(tn int) {
				defer wg.Done()
				if cfg.maxBatch <= 1 {
					for !stop.Load() {
						if !p.Ingress(tn, stampedPayload()) {
							time.Sleep(5 * time.Microsecond)
							continue
						}
						if pace > 0 {
							time.Sleep(pace)
						}
					}
					return
				}
				// Batched ingress: one IngressBatch per burst; the accepted
				// count is a prefix, so resubmit the remainder.
				items := make([]dataplane.IngressItem, cfg.maxBatch)
				for !stop.Load() {
					for k := range items {
						items[k] = dataplane.IngressItem{Tenant: tn, Payload: stampedPayload()}
					}
					sent := 0
					for sent < len(items) && !stop.Load() {
						n := p.IngressBatch(items[sent:])
						if n == 0 {
							time.Sleep(5 * time.Microsecond)
							continue
						}
						sent += n
					}
					if pace > 0 {
						time.Sleep(pace * time.Duration(len(items)))
					}
				}
			}(tn)
		}
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			faulty := inj != nil && inj.Faulty(tn)
			count := func(n int) {
				if faulty {
					faultyConsumed.Add(int64(n))
				} else {
					healthyConsumed.Add(int64(n))
				}
			}
			if cfg.maxBatch > 1 {
				// Batched egress: block for the first item, then drain the
				// backlog in one EgressBatch — batching without burning the
				// CPU polling an empty delivery ring.
				dst := make([][]byte, cfg.maxBatch)
				for {
					if inj != nil && inj.Stalled(tn) {
						if stop.Load() {
							return
						}
						time.Sleep(100 * time.Microsecond)
						continue
					}
					out, ok := p.EgressWait(tn)
					if !ok {
						return
					}
					n := p.EgressBatch(tn, dst)
					count(n + 1)
					now := time.Now()
					latMu.Lock()
					if len(lats) < 2_000_000 {
						lats = append(lats, now.Sub(timeFrom(out)))
					}
					for _, v := range dst[:n] {
						if len(lats) < 2_000_000 {
							lats = append(lats, now.Sub(timeFrom(v)))
						}
					}
					latMu.Unlock()
					if stop.Load() {
						return
					}
				}
			}
			for {
				if inj != nil && inj.Stalled(tn) {
					if stop.Load() {
						return
					}
					time.Sleep(100 * time.Microsecond)
					continue
				}
				out, ok := p.EgressWait(tn)
				if !ok {
					return
				}
				d := time.Since(timeFrom(out))
				count(1)
				latMu.Lock()
				if len(lats) < 2_000_000 {
					lats = append(lats, d)
				}
				latMu.Unlock()
				if stop.Load() {
					return
				}
			}
		}(tn)
	}

	start := time.Now()
	time.Sleep(cfg.duration)
	stop.Store(true)
	elapsed := time.Since(start)
	st := p.Stats()
	p.Stop() // closes tenant notifiers, unblocking EgressWait
	wg.Wait()

	latMu.Lock()
	defer latMu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	return result{
		healthyThr: float64(healthyConsumed.Load()) / elapsed.Seconds(),
		faultyThr:  float64(faultyConsumed.Load()) / elapsed.Seconds(),
		p50:        pct(0.50),
		p99:        pct(0.99),
		stats:      st,
	}, nil
}

// stampedPayload returns a fresh 8-byte payload carrying time.Now, the
// round-trip latency probe.
func stampedPayload() []byte {
	payload := make([]byte, 8)
	for i, b := range timeBytes(time.Now()) {
		payload[i] = b
	}
	return payload
}

func timeBytes(t time.Time) [8]byte {
	n := t.UnixNano()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(n >> (8 * i))
	}
	return b
}

func timeFrom(b []byte) time.Time {
	var n int64
	for i := 0; i < 8 && i < len(b); i++ {
		n |= int64(b[i]) << (8 * i)
	}
	return time.Unix(0, n)
}

//go:build !unix

package main

// processCPUSeconds is unavailable off unix: -loadsweep cells record no
// cpu_seconds and the proportionality guard is skipped.
func processCPUSeconds() (float64, bool) { return 0, false }

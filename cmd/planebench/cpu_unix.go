//go:build unix

package main

import "syscall"

// processCPUSeconds returns the process's cumulative user+system CPU
// time. The diff across a measurement window is a cell's cpu_seconds —
// what the -loadsweep proportionality sweep compares between the spin
// baseline and the governed plane.
func processCPUSeconds() (float64, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	sec := func(tv syscall.Timeval) float64 { return float64(tv.Sec) + float64(tv.Usec)/1e6 }
	return sec(ru.Utime) + sec(ru.Stime), true
}

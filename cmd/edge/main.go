// Command edge runs the network-fronted data plane: HTTP ingest with
// batched zero-alloc staging into the plane's MPSC ingress, and SSE /
// WebSocket fan-out with per-connection write coalescing. SIGTERM
// drains in dependency order — staged batches flush, the plane drains
// bounded by -drain-timeout, subscribers get a final flush, then the
// listener closes — so nothing the edge 202'd is silently dropped.
//
//	edge -listen :8080 -tenants 8 -rate 50000 -burst 1000
//	curl -XPOST localhost:8080/v1/ingest?tenant=0 -d 'hello'
//	curl -N localhost:8080/v1/subscribe?tenant=0
//
// With -node-id the edge joins a federation: tenants hash onto the
// cluster ring and ingest for a tenant owned by a peer is forwarded
// over the node bridge instead of being served locally.
//
//	edge -listen :8080 -node-id a -cluster-listen :9100 \
//	     -peers b=host2:9100,c=host3:9100
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/cluster"
	"hyperplane/internal/cluster/frame"
	"hyperplane/internal/edge"
	"hyperplane/internal/telemetry"
)

func main() {
	var (
		listen        = flag.String("listen", ":8080", "ingest/subscribe listen address")
		tenants       = flag.Int("tenants", 8, "tenant queue pairs")
		workers       = flag.Int("workers", 0, "plane workers (0 = tenants, capped by the plane)")
		ring          = flag.Int("ring", 4096, "ring capacity (power of two)")
		mode          = flag.String("mode", "notify", "notification mode: notify, spin or hybrid")
		rate          = flag.Float64("rate", 0, "per-tenant ingest requests/sec (0 = unlimited)")
		burst         = flag.Int("burst", 0, "rate-limit burst depth")
		flushBatch    = flag.Int("flush-batch", 64, "requests staged per IngressBatch flush")
		flushInterval = flag.Duration("flush-interval", 200*time.Microsecond, "partial-batch flush deadline")
		idemWindow    = flag.Int("idem-window", 4096, "per-tenant idempotency-key history")
		maxPayload    = flag.Int("max-payload", 0, "largest ingest body in bytes (0 = slab size)")
		subBuffer     = flag.Int("sub-buffer", 256<<10, "per-subscriber pending ring in bytes")
		subPolicy     = flag.String("sub-policy", "drop-oldest", "slow-subscriber policy: drop-oldest or drop-newest")
		writeTimeout  = flag.Duration("write-timeout", 5*time.Second, "per-subscriber coalesced write deadline")
		durableDir    = flag.String("durable", "", "WAL directory (empty = in-memory plane)")
		authSpec      = flag.String("auth", "", "comma-separated token=tenant pairs (empty = open mode, ?tenant=N)")
		metricsAddr   = flag.String("metrics", "", "telemetry listen address for /metrics (empty = off)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "SIGTERM drain bound")
		nodeID        = flag.String("node-id", "", "federation node id (empty = standalone edge)")
		clusterListen = flag.String("cluster-listen", "", "node-to-node bridge listen address (default 127.0.0.1:0)")
		peersSpec     = flag.String("peers", "", "comma-separated id=host:port federation peers")
	)
	flag.Parse()

	m, err := dataplane.ParseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	pol := dataplane.DropOldest
	switch *subPolicy {
	case "drop-oldest":
	case "drop-newest":
		pol = dataplane.DropNewest
	default:
		log.Fatalf("unknown -sub-policy %q (want drop-oldest or drop-newest)", *subPolicy)
	}
	var auth map[string]int
	if *authSpec != "" {
		auth = make(map[string]int)
		for _, pair := range strings.Split(*authSpec, ",") {
			tok, t, ok := strings.Cut(pair, "=")
			if !ok {
				log.Fatalf("bad -auth entry %q (want token=tenant)", pair)
			}
			id, err := strconv.Atoi(t)
			if err != nil || id < 0 || id >= *tenants {
				log.Fatalf("bad -auth tenant in %q", pair)
			}
			auth[tok] = id
		}
	}

	cfg := edge.Config{
		Plane: dataplane.Config{
			Tenants:      *tenants,
			Workers:      *workers,
			RingCapacity: *ring,
			Mode:         m,
			Delivery:     pol,
		},
		Auth:          auth,
		Rate:          *rate,
		Burst:         *burst,
		FlushBatch:    *flushBatch,
		FlushInterval: *flushInterval,
		IdemWindow:    *idemWindow,
		MaxPayload:    *maxPayload,
		SubBuffer:     *subBuffer,
		SubPolicy:     pol,
		WriteTimeout:  *writeTimeout,
	}
	if *workers == 0 {
		cfg.Plane.Workers = *tenants
	}
	if *durableDir != "" {
		cfg.Plane.Durable = dataplane.DurableConfig{Dir: *durableDir}
	}
	if *metricsAddr != "" {
		tel, err := telemetry.New(telemetry.Config{Tenants: *tenants, Workers: cfg.Plane.Workers})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Telemetry = tel
		cfg.Plane.Telemetry = tel
		go func() {
			log.Printf("telemetry on %s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, tel.Handler()); err != nil {
				log.Printf("telemetry server: %v", err)
			}
		}()
	}

	var peers []cluster.PeerSpec
	if *peersSpec != "" {
		if *nodeID == "" {
			log.Fatal("-peers requires -node-id")
		}
		for _, pair := range strings.Split(*peersSpec, ",") {
			id, addr, ok := strings.Cut(pair, "=")
			if !ok || id == "" || addr == "" {
				log.Fatalf("bad -peers entry %q (want id=host:port)", pair)
			}
			peers = append(peers, cluster.PeerSpec{ID: id, Addr: addr})
		}
	}

	s, err := edge.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s.Start()

	var node *cluster.Node
	if *nodeID != "" {
		// The bridge frame cap must fit one max-size ingest body plus
		// its batch headers; below the protocol default, just use the
		// default. Every node derives this from the same -max-payload
		// flag, so the cluster agrees on one cap.
		clusterMax := cfg.MaxPayload + frame.BatchRunOverhead + frame.BatchItemOverhead
		if clusterMax < frame.DefaultMaxPayload {
			clusterMax = frame.DefaultMaxPayload
		}
		node, err = cluster.NewNode(cluster.Config{
			ID:         *nodeID,
			ListenAddr: *clusterListen,
			Peers:      peers,
			Plane:      s.Plane(),
			MaxPayload: clusterMax,
			Telemetry:  cfg.Telemetry,
			Logf:       log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := node.Start(); err != nil {
			log.Fatal(err)
		}
		s.SetRouter(node)
		log.Printf("federation node %s on %s (%d peers)", *nodeID, node.Addr(), len(peers))
	}
	hs := &http.Server{Addr: *listen, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("edge on %s (tenants=%d workers=%d mode=%s flush-batch=%d)",
		*listen, *tenants, cfg.Plane.Workers, *mode, *flushBatch)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("listener: %v", err)
	case <-ctx.Done():
	}
	log.Printf("draining (bound %s)", *drainTimeout)
	if node != nil {
		// Leave the federation first: stop accepting bridge traffic and
		// flush the outboxes so peers re-home this node's tenants while
		// the local plane drains what it already owns.
		s.SetRouter(nil)
		node.Stop()
	}
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(sctx, hs); err != nil {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	st := s.Stats()
	fmt.Printf("drained: accepted=%d flushed=%d fanout=%d coalesced_writes=%d dropped_subs=%d\n",
		st.Accepted, st.FlushedItems, st.FanoutMsgs, st.CoalescedWrites, st.SubDropped)
}

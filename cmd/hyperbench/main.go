// Command hyperbench regenerates the HyperPlane paper's tables and figures
// on the simulated evaluation platform.
//
// Usage:
//
//	hyperbench -list                 # show available experiments
//	hyperbench -exp fig8             # regenerate one figure (full fidelity)
//	hyperbench -exp all -quick       # everything, reduced sweeps
//	hyperbench -exp fig3a -csv       # machine-readable output
//	hyperbench -exp fig9a -out dir/  # also write per-figure CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hyperplane"
	"hyperplane/internal/benchmeta"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list  = flag.Bool("list", false, "list available experiments")
		quick = flag.Bool("quick", false, "reduced sweeps for a fast pass")
		csv   = flag.Bool("csv", false, "print CSV instead of text tables")
		plot  = flag.Bool("plot", false, "print ASCII charts instead of text tables")
		out   = flag.String("out", "", "directory to also write per-figure CSV files")
		seed  = flag.Uint64("seed", 42, "simulation seed")
		reps  = flag.Int("replicate", 1, "average results over N seeds and report variability")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, f := range hyperplane.Figures() {
			fmt.Printf("  %-9s %s\n", f.ID, f.Desc)
		}
		if *exp == "" {
			fmt.Println("\nRun with -exp <id> or -exp all.")
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, f := range hyperplane.Figures() {
			ids = append(ids, f.ID)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	for _, id := range ids {
		start := time.Now()
		figs, err := hyperplane.ReproduceFigureN(id, *quick, *seed, *reps)
		if err != nil {
			fatal(err)
		}
		for i, f := range figs {
			switch {
			case *csv:
				fmt.Print(f.CSV)
			case *plot:
				fmt.Print(f.Plot)
			default:
				fmt.Print(f.Text)
			}
			if *out != "" {
				name := f.ID
				if len(figs) > 1 {
					name = fmt.Sprintf("%s_%d", f.ID, i)
				}
				path := filepath.Join(*out, name+".csv")
				if err := benchmeta.WriteFileAtomic(path, []byte(f.CSV), 0o644); err != nil {
					fatal(err)
				}
			}
		}
		if !*csv {
			fmt.Printf("   [%s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperbench:", strings.TrimPrefix(err.Error(), "hyperplane: "))
	os.Exit(1)
}

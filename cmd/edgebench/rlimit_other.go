//go:build !unix

package main

// raiseFDLimit is a no-op where RLIMIT_NOFILE does not exist; assume a
// generous descriptor budget.
func raiseFDLimit() uint64 { return 1 << 20 }

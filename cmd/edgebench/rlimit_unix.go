//go:build unix

package main

import "syscall"

// raiseFDLimit lifts RLIMIT_NOFILE to its hard cap and returns the
// resulting soft limit; the subscriber grid sizes itself against it
// (each in-process subscriber burns two descriptors: the client socket
// and the server's accepted side).
func raiseFDLimit() uint64 {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 1024
	}
	if lim.Cur < lim.Max {
		lim.Cur = lim.Max
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil {
			syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim)
		}
	}
	return uint64(lim.Cur)
}

// Command edgebench drives the network edge the way the paper drives
// the notifier: a paced open-loop ingest load against N concurrent
// subscriber connections, measuring sustained throughput, end-to-end
// p50/p99 (ingest POST to SSE delivery, stamped payloads), and how
// fan-out scales with subscriber count. It also measures the core
// amortization claim head-on: batched staging (FlushBatch=64, one MPSC
// cursor publish + one doorbell per batch) against per-request
// enqueueing (FlushBatch=1), the edge-layer analogue of PushBatch vs
// Push.
//
// Results land in BENCH_edge.json (via -out) with host metadata and the
// repo's scaling_note convention: guard checks that compare concurrent
// behavior are skipped, with a note, when GOMAXPROCS < 2.
//
//	edgebench -subs 100,1000,10000 -duration 3s -out BENCH_edge.json
//	edgebench -smoke -batch-check 2.0   # CI self-test
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/benchmeta"
	"hyperplane/internal/edge"
)

type edgeCell struct {
	Kind                string  `json:"kind"` // ingest_core | fanout
	Tenants             int     `json:"tenants"`
	FlushBatch          int     `json:"flush_batch,omitempty"`
	Producers           int     `json:"producers,omitempty"`
	ItemsPerSec         float64 `json:"items_per_sec,omitempty"`
	SpeedupVsPerRequest float64 `json:"speedup_vs_per_request,omitempty"`
	Subscribers         int     `json:"subscribers,omitempty"`
	IngestPerSec        float64 `json:"ingest_per_sec,omitempty"`
	DeliveriesPerSec    float64 `json:"deliveries_per_sec,omitempty"`
	P50Ns               int64   `json:"p50_ns,omitempty"`
	P99Ns               int64   `json:"p99_ns,omitempty"`
	SubDropped          int64   `json:"sub_dropped,omitempty"`
	FramesPerWrite      float64 `json:"frames_per_write,omitempty"`
}

type edgeReport struct {
	benchmeta.Host
	DurationMS   int64      `json:"duration_ms_per_cell"`
	PayloadBytes int        `json:"payload_bytes"`
	ScalingNote  string     `json:"scaling_note,omitempty"`
	FDNote       string     `json:"fd_note,omitempty"`
	Cells        []edgeCell `json:"cells"`
}

type benchCfg struct {
	duration  time.Duration
	trials    int
	payload   int
	tenants   int
	workers   int
	producers int
	rate      float64
	smoke     bool
}

func main() {
	var (
		subsFlag   = flag.String("subs", "100,1000,10000", "subscriber-count grid (comma-separated)")
		duration   = flag.Duration("duration", 3*time.Second, "measured window per cell")
		trials     = flag.Int("trials", 3, "trials per cell (median reported)")
		payload    = flag.Int("payload", 128, "ingest payload bytes (>= 24 for the latency stamp)")
		tenants    = flag.Int("tenants", 8, "tenant count")
		workers    = flag.Int("workers", 0, "plane workers (0 = GOMAXPROCS)")
		producers  = flag.Int("producers", 8, "concurrent ingest producers")
		rate       = flag.Float64("rate", 100000, "paced open-loop ingest msgs/sec across producers (0 = closed loop)")
		outFlag    = flag.String("out", "", "write the JSON report here via benchmeta (e.g. BENCH_edge.json)")
		smoke      = flag.Bool("smoke", false, "shrink every knob for a fast self-test and run edge self-checks")
		batchCheck = flag.Float64("batch-check", 0,
			"guard: fail unless batched ingest (FlushBatch=64) >= this multiple of per-request enqueue (FlushBatch=1); skipped with a scaling_note on single-core hosts")
	)
	flag.Parse()

	cfg := benchCfg{
		duration:  *duration,
		trials:    *trials,
		payload:   *payload,
		tenants:   *tenants,
		workers:   *workers,
		producers: *producers,
		rate:      *rate,
		smoke:     *smoke,
	}
	subCounts := parseGrid(*subsFlag)
	if *smoke {
		cfg.duration = 300 * time.Millisecond
		cfg.trials = 1
		cfg.payload = 64
		cfg.tenants = 4
		cfg.producers = 2
		cfg.rate = 5000
		subCounts = []int{50}
	}
	if cfg.payload < 24 {
		cfg.payload = 24
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}

	rep := edgeReport{
		Host:         benchmeta.Collect(),
		DurationMS:   cfg.duration.Milliseconds(),
		PayloadBytes: cfg.payload,
	}
	rep.ScalingNote = benchmeta.ScalingNote(runtime.GOMAXPROCS(0), 2,
		"producers, workers and subscriber writers time-slice, so batched-vs-per-request and subscriber-scaling ratios understate multi-core gains (batch-check guard skipped)")
	singleCore := rep.ScalingNote != ""
	if singleCore {
		fmt.Fprintln(os.Stderr, "note:", rep.ScalingNote)
	}

	// Descriptor budget: each in-process subscriber costs two fds.
	fdLimit := raiseFDLimit()
	maxSubs := int(fdLimit)/2 - 256
	capped := false
	for i, n := range subCounts {
		if n > maxSubs {
			subCounts[i] = maxSubs
			capped = true
		}
	}
	if capped {
		rep.FDNote = benchmeta.FDNote(fdLimit, maxSubs, 2)
		fmt.Fprintln(os.Stderr, "note:", rep.FDNote)
	}

	// ---- ingest_core: batched staging vs per-request enqueue ----
	fmt.Printf("%-12s %8s %11s %8s %14s %10s\n", "kind", "tenants", "flush_batch", "subs", "items/s", "speedup")
	perReq := medianTrials(cfg.trials, func() float64 { return runIngestCore(cfg, 1) })
	rep.Cells = append(rep.Cells, edgeCell{
		Kind: "ingest_core", Tenants: cfg.tenants, FlushBatch: 1,
		Producers: cfg.producers, ItemsPerSec: perReq,
	})
	fmt.Printf("%-12s %8d %11d %8s %14.0f %10s\n", "ingest_core", cfg.tenants, 1, "-", perReq, "-")
	batched := medianTrials(cfg.trials, func() float64 { return runIngestCore(cfg, 64) })
	speedup := 0.0
	if perReq > 0 {
		speedup = batched / perReq
	}
	rep.Cells = append(rep.Cells, edgeCell{
		Kind: "ingest_core", Tenants: cfg.tenants, FlushBatch: 64,
		Producers: cfg.producers, ItemsPerSec: batched, SpeedupVsPerRequest: speedup,
	})
	fmt.Printf("%-12s %8d %11d %8s %14.0f %9.2fx\n", "ingest_core", cfg.tenants, 64, "-", batched, speedup)

	// ---- fanout: paced ingest against N SSE subscribers ----
	for _, subs := range subCounts {
		cell := runFanout(cfg, subs)
		rep.Cells = append(rep.Cells, cell)
		fmt.Printf("%-12s %8d %11d %8d %14.0f  p50=%s p99=%s dropped=%d frames/write=%.1f\n",
			"fanout", cell.Tenants, 64, cell.Subscribers, cell.DeliveriesPerSec,
			time.Duration(cell.P50Ns), time.Duration(cell.P99Ns), cell.SubDropped, cell.FramesPerWrite)
	}

	if cfg.smoke {
		if err := runSelfChecks(); err != nil {
			fmt.Fprintln(os.Stderr, "smoke self-check failed:", err)
			os.Exit(1)
		}
		fmt.Println("smoke self-checks passed: subscriber delivery, idempotency dedup, rate-limit 429")
	}

	if *batchCheck > 0 {
		if singleCore {
			fmt.Fprintf(os.Stderr, "batch-check %.2fx skipped: %s\n", *batchCheck, rep.ScalingNote)
		} else if speedup < *batchCheck {
			fmt.Fprintf(os.Stderr, "batch-check failed: batched ingest %.2fx per-request, want >= %.2fx\n", speedup, *batchCheck)
			os.Exit(1)
		} else {
			fmt.Printf("batch-check ok: %.2fx >= %.2fx\n", speedup, *batchCheck)
		}
	}

	if *outFlag != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := benchmeta.WriteFileAtomic(*outFlag, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", *outFlag)
	}
}

func parseGrid(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -subs entry %q\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func medianTrials(trials int, run func() float64) float64 {
	vals := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		vals = append(vals, run())
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

func newEdge(cfg benchCfg, flushBatch int) *edge.Server {
	s, err := edge.New(edge.Config{
		Plane: dataplane.Config{
			Tenants:      cfg.tenants,
			Workers:      cfg.workers,
			RingCapacity: 1 << 14,
		},
		FlushBatch:    flushBatch,
		FlushInterval: 200 * time.Microsecond,
		SubBuffer:     256 << 10,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.Start()
	return s
}

func shutdownEdge(s *edge.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx, nil)
}

// runIngestCore measures the staging + IngressBatch path alone (no
// network): producers submit closed-loop for the window; the cell value
// is accepted items/sec. flushBatch=1 is the per-request-enqueue
// baseline — every request pays its own cursor publish and doorbell.
func runIngestCore(cfg benchCfg, flushBatch int) float64 {
	s := newEdge(cfg, flushBatch)
	defer shutdownEdge(s)
	payload := bytes.Repeat([]byte{'x'}, cfg.payload)
	var stop atomic.Bool
	var accepted int64
	var wg sync.WaitGroup
	for p := 0; p < cfg.producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tenant := id % cfg.tenants
			var local int64
			for !stop.Load() {
				if _, st := s.Submit(tenant, payload, 0); st == edge.SubmitAccepted {
					local++
				}
			}
			atomic.AddInt64(&accepted, local)
		}(p)
	}
	start := time.Now()
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(atomic.LoadInt64(&accepted)) / elapsed.Seconds()
}

// subscriber is one raw-TCP SSE connection; it parses "data:" lines,
// recovers the UnixNano stamp at the front of each payload, and keeps a
// bounded latency sample.
type subscriber struct {
	received atomic.Int64
	samples  []int64
	mu       sync.Mutex
}

func (s *subscriber) run(addr string, tenant int, ready func(), done <-chan struct{}) error {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		ready()
		return err
	}
	go func() {
		<-done
		conn.Close()
	}()
	req := "GET /v1/subscribe?tenant=" + strconv.Itoa(tenant) + " HTTP/1.1\r\nHost: edgebench\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		ready()
		return err
	}
	br := bufio.NewReaderSize(conn, 2048)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			ready()
			return err
		}
		if line == "\r\n" {
			break
		}
	}
	ready()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil // connection closed at teardown
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		n := s.received.Add(1)
		if n&0x3f != 1 { // sample 1/64 for latency, starting at the first frame
			continue
		}
		if stamp, e := strconv.ParseInt(strings.TrimRight(firstField(data), "\n"), 10, 64); e == nil {
			lat := time.Now().UnixNano() - stamp
			s.mu.Lock()
			if len(s.samples) < 4096 {
				s.samples = append(s.samples, lat)
			}
			s.mu.Unlock()
		}
	}
}

func firstField(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i]
	}
	return s
}

// producer posts stamped payloads over one keep-alive HTTP/1.1
// connection, paced to its share of the open-loop rate.
func producer(addr string, tenant, payloadLen int, per time.Duration, stop *atomic.Bool, sent *int64) error {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 2048)
	body := make([]byte, payloadLen)
	for i := range body {
		body[i] = 'p'
	}
	head := "POST /v1/ingest?tenant=" + strconv.Itoa(tenant) + " HTTP/1.1\r\nHost: edgebench\r\nContent-Length: " +
		strconv.Itoa(payloadLen) + "\r\nContent-Type: application/octet-stream\r\n\r\n"
	next := time.Now()
	var local int64
	for !stop.Load() {
		// Stamp send time at the front of the body (space-padded).
		stamp := strconv.AppendInt(body[:0], time.Now().UnixNano(), 10)
		for i := len(stamp); i < payloadLen; i++ {
			body[i] = ' '
		}
		body = body[:payloadLen]
		if _, err := io.WriteString(conn, head); err != nil {
			break
		}
		if _, err := conn.Write(body); err != nil {
			break
		}
		if err := readHTTPResponse(br); err != nil {
			break
		}
		local++
		if per > 0 {
			next = next.Add(per)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			} else if d < -100*time.Millisecond {
				next = time.Now() // lost the pace; don't burst to catch up
			}
		}
	}
	atomic.AddInt64(sent, local)
	return nil
}

// readHTTPResponse consumes one response (status, headers,
// Content-Length-delimited body) from a keep-alive stream.
func readHTTPResponse(br *bufio.Reader) error {
	if _, err := br.ReadString('\n'); err != nil {
		return err
	}
	contentLen := 0
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		if line == "\r\n" {
			break
		}
		if v, ok := strings.CutPrefix(line, "Content-Length: "); ok {
			contentLen, _ = strconv.Atoi(strings.TrimSpace(v))
		}
	}
	if contentLen > 0 {
		if _, err := io.CopyN(io.Discard, br, int64(contentLen)); err != nil {
			return err
		}
	}
	return nil
}

// runFanout is the end-to-end cell: an edge server on a loopback
// listener, subs SSE subscribers spread across tenants (<=256 per
// tenant), paced HTTP producers, measured for the window.
func runFanout(cfg benchCfg, subs int) edgeCell {
	tenantsUsed := (subs + 255) / 256
	if tenantsUsed < 1 {
		tenantsUsed = 1
	}
	if tenantsUsed > cfg.tenants {
		tenantsUsed = cfg.tenants
	}
	fcfg := cfg
	s := newEdge(fcfg, 64)
	defer shutdownEdge(s)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	addr := ln.Addr().String()

	// Bring up subscribers with bounded setup concurrency. The slot is
	// released at readiness (headers parsed or setup failed), not at
	// connection teardown — run() blocks for the whole measurement, so
	// releasing on return would cap the grid at the semaphore size.
	subsArr := make([]*subscriber, subs)
	done := make(chan struct{})
	var ready sync.WaitGroup
	ready.Add(subs)
	sem := make(chan struct{}, 256)
	for i := 0; i < subs; i++ {
		subsArr[i] = &subscriber{}
		sem <- struct{}{}
		go func(i int) {
			var once sync.Once
			subsArr[i].run(addr, i%tenantsUsed, func() {
				once.Do(func() { ready.Done(); <-sem })
			}, done)
		}(i)
	}
	ready.Wait()

	// Producers: paced open loop across the same tenants.
	var stop atomic.Bool
	var sent int64
	var pwg sync.WaitGroup
	per := time.Duration(0)
	if cfg.rate > 0 {
		per = time.Duration(float64(time.Second) * float64(cfg.producers) / cfg.rate)
	}
	preStats := s.Stats()
	start := time.Now()
	for p := 0; p < cfg.producers; p++ {
		pwg.Add(1)
		go func(id int) {
			defer pwg.Done()
			producer(addr, id%tenantsUsed, cfg.payload, per, &stop, &sent)
		}(p)
	}
	time.Sleep(cfg.duration)
	stop.Store(true)
	pwg.Wait()
	// Let in-flight fan-out land before reading counters.
	time.Sleep(100 * time.Millisecond)
	elapsed := time.Since(start)
	st := s.Stats()
	close(done)

	var received int64
	var samples []int64
	minPerSub := int64(1 << 62)
	for _, sub := range subsArr {
		n := sub.received.Load()
		received += n
		if n < minPerSub {
			minPerSub = n
		}
		sub.mu.Lock()
		samples = append(samples, sub.samples...)
		sub.mu.Unlock()
	}
	if cfg.smoke && minPerSub < 1 {
		fmt.Fprintln(os.Stderr, "smoke self-check failed: a subscriber received zero messages")
		os.Exit(1)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var p50, p99 int64
	if len(samples) > 0 {
		p50 = samples[len(samples)*50/100]
		p99 = samples[min(len(samples)*99/100, len(samples)-1)]
	}
	framesPerWrite := 0.0
	if w := st.CoalescedWrites - preStats.CoalescedWrites; w > 0 {
		framesPerWrite = float64(st.FanoutMsgs-preStats.FanoutMsgs) / float64(w)
	}
	return edgeCell{
		Kind:             "fanout",
		Tenants:          tenantsUsed,
		FlushBatch:       64,
		Producers:        cfg.producers,
		Subscribers:      subs,
		IngestPerSec:     float64(st.Accepted-preStats.Accepted) / elapsed.Seconds(),
		DeliveriesPerSec: float64(received) / elapsed.Seconds(),
		P50Ns:            p50,
		P99Ns:            p99,
		SubDropped:       st.SubDropped - preStats.SubDropped,
		FramesPerWrite:   framesPerWrite,
	}
}

// runSelfChecks exercises the ingest contract end to end: idempotency
// dedup and rate limiting, over real HTTP.
func runSelfChecks() error {
	s, err := edge.New(edge.Config{
		Plane:      dataplane.Config{Tenants: 1, Workers: 1},
		FlushBatch: 1,
		Rate:       0.0001, // one token every ~3h: burst only
		Burst:      3,
	})
	if err != nil {
		return err
	}
	s.Start()
	defer shutdownEdge(s)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	post := func(key string) (*http.Response, string, error) {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/ingest?tenant=0", strings.NewReader("self-check"))
		if err != nil {
			return nil, "", err
		}
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, "", err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body), nil
	}
	resp, body1, err := post("edgebench-check")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("first keyed post: status %d", resp.StatusCode)
	}
	resp, body2, err := post("edgebench-check")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted || !strings.Contains(body2, `"duplicate":true`) {
		return fmt.Errorf("idempotent retry not deduplicated: status %d body %q (first %q)", resp.StatusCode, body2, body1)
	}
	// Burst is 3; the two keyed posts consumed 2 tokens. One more
	// passes, then the limiter must say 429.
	if resp, _, err = post(""); err != nil || resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("third post inside burst: %v status %d", err, resp.StatusCode)
	}
	if resp, _, err = post(""); err != nil || resp.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("rate limit never tripped: %v status %d", err, resp.StatusCode)
	}
	return nil
}

// notifierbench compares the banked lock-free Notifier against the
// retired single-mutex engine it replaced, over a producers×queues grid,
// and writes the results as JSON (BENCH_notifier.json via `make bench`).
//
// Each cell runs the full notification protocol: p producers loop
// {doorbell.Add(1); Notify(qid)} over the queue set while one consumer
// loops {Wait; drain the doorbell; Reconsider/Consume}. ns/op is wall
// time divided by items consumed; allocs/op comes from a
// runtime.MemStats delta. The steady state is producer-bound, so the
// cell mostly measures the Notify fast path under producer fan-in — the
// path the banked engine turns from a global lock acquisition into a
// single atomic load.
//
// Run with: go run ./cmd/notifierbench -out BENCH_notifier.json
//
// Guard mode re-measures the grid recorded in a previous report and fails
// (exit 1) if any cell's best-path speedup over the mutex engine regresses
// by more than the tolerance. Comparing the speedup *ratio* — both engines
// re-measured on the current machine — keeps the check portable across
// hosts, unlike absolute ns/op:
//
//	go run ./cmd/notifierbench -check BENCH_notifier.json -tolerance 0.10
//
// A second guard compares the banked engine with and without a telemetry
// plane attached (default 1/64 sampling) and fails if enabling telemetry
// costs more than -telemetry-tolerance on the Notify path:
//
//	go run ./cmd/notifierbench -telemetry-check -telemetry-tolerance 0.05
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane"
	"hyperplane/internal/benchmeta"
	"hyperplane/internal/policy"
	"hyperplane/internal/ready"
	"hyperplane/internal/telemetry"
)

// engine is the slice of the Notifier surface the harness exercises.
type engine interface {
	Register(db *atomic.Int64) int
	Notify(qid int)
	NotifyBatch(qids []hyperplane.QID)
	Wait() (int, bool)
	Consume(qid int) bool
	Close()
}

// --- baseline: the single global mutex + cond engine this PR retired ----

type mutexQueue struct {
	doorbell   *atomic.Int64
	armed      bool
	registered bool
}

// mutexEngine is a verbatim port of the pre-banked Notifier's measured
// paths (Register / Notify / Wait / Reconsider / Close), stats counters
// and all: one mutex and one condition variable guard the ready set and
// every armed bit, so producers and the consumer serialize on the same
// lock for every operation.
type mutexEngine struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rs     *ready.Hardware
	queues []mutexQueue
	closed bool
	next   int

	notifies  atomic.Int64
	activates atomic.Int64
	waits     atomic.Int64
	halts     atomic.Int64
}

func newMutexEngine(maxQueues int) *mutexEngine {
	rs, err := ready.NewHardware(maxQueues, policy.Spec{Kind: policy.RoundRobin})
	if err != nil {
		log.Fatal(err)
	}
	e := &mutexEngine{
		rs:     rs,
		queues: make([]mutexQueue, maxQueues),
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

func (e *mutexEngine) Register(db *atomic.Int64) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	qid := e.next
	e.next++
	e.queues[qid] = mutexQueue{doorbell: db, armed: true, registered: true}
	e.rs.SetEnabled(qid, true)
	if db.Load() > 0 {
		e.activateLocked(qid)
	}
	return qid
}

func (e *mutexEngine) activateLocked(qid int) {
	e.queues[qid].armed = false
	e.rs.Activate(qid)
	e.activates.Add(1)
	e.cond.Signal()
}

func (e *mutexEngine) Notify(qid int) {
	e.notifies.Add(1)
	e.mu.Lock()
	defer e.mu.Unlock()
	if qid < 0 || qid >= len(e.queues) || !e.queues[qid].registered {
		return
	}
	if e.queues[qid].armed {
		e.activateLocked(qid)
	}
}

// NotifyBatch on the retired engine is just a Notify loop: with one
// global lock there is nothing to amortize, which is half the point of
// the comparison.
func (e *mutexEngine) NotifyBatch(qids []hyperplane.QID) {
	for _, q := range qids {
		e.Notify(int(q))
	}
}

func (e *mutexEngine) Wait() (int, bool) {
	e.waits.Add(1)
	e.mu.Lock()
	defer e.mu.Unlock()
	blocked := false
	for {
		if e.closed {
			return 0, false
		}
		if q, found, _ := e.rs.Select(); found {
			if blocked {
				e.halts.Add(1)
			}
			return q, true
		}
		blocked = true
		e.cond.Wait()
	}
}

// Consume is the retired engine's Reconsider: re-activate if items
// remain, re-arm otherwise, atomically with respect to Notify.
func (e *mutexEngine) Consume(qid int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || qid < 0 || qid >= len(e.queues) || !e.queues[qid].registered {
		return false
	}
	if e.queues[qid].doorbell.Load() > 0 {
		e.activateLocked(qid)
		return true
	}
	e.queues[qid].armed = true
	return false
}

func (e *mutexEngine) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// --- banked: the real hyperplane.Notifier -------------------------------

type bankedEngine struct {
	n *hyperplane.Notifier
}

func newBankedEngine(maxQueues int) *bankedEngine {
	n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{MaxQueues: maxQueues})
	if err != nil {
		log.Fatal(err)
	}
	return &bankedEngine{n: n}
}

func (e *bankedEngine) Register(db *atomic.Int64) int {
	qid, err := e.n.Register(db)
	if err != nil {
		log.Fatal(err)
	}
	return int(qid)
}

func (e *bankedEngine) Notify(qid int) { e.n.Notify(hyperplane.QID(qid)) }

func (e *bankedEngine) NotifyBatch(qids []hyperplane.QID) { e.n.NotifyBatch(qids) }

func (e *bankedEngine) Wait() (int, bool) {
	qid, ok := e.n.Wait()
	return int(qid), ok
}

func (e *bankedEngine) Consume(qid int) bool { return e.n.Consume(hyperplane.QID(qid)) }
func (e *bankedEngine) Close()               { e.n.Close() }

// --- telemetry-enabled banked engine ------------------------------------
//
// The same Notifier with a telemetry plane attached at the default 1/64
// sampling: producers pay the sampling branch in Notify, the consumer
// closes sampled spans at dispatch (TakeStamp + RecordNotify) exactly
// like a dataplane worker does. The -telemetry-check guard compares this
// engine against the plain banked one.

type telemetryEngine struct {
	n   *hyperplane.Notifier
	tel *telemetry.T
}

func newTelemetryEngine(maxQueues int) *telemetryEngine {
	tel, err := telemetry.New(telemetry.Config{Tenants: maxQueues, Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{
		MaxQueues: maxQueues,
		Telemetry: tel,
	})
	if err != nil {
		log.Fatal(err)
	}
	return &telemetryEngine{n: n, tel: tel}
}

func (e *telemetryEngine) Register(db *atomic.Int64) int {
	qid, err := e.n.Register(db)
	if err != nil {
		log.Fatal(err)
	}
	return int(qid)
}

func (e *telemetryEngine) Notify(qid int) { e.n.Notify(hyperplane.QID(qid)) }

func (e *telemetryEngine) NotifyBatch(qids []hyperplane.QID) { e.n.NotifyBatch(qids) }

func (e *telemetryEngine) Wait() (int, bool) {
	qid, ok := e.n.Wait()
	return int(qid), ok
}

func (e *telemetryEngine) Consume(qid int) bool {
	if ts := e.n.TakeStamp(hyperplane.QID(qid)); ts != 0 {
		e.tel.RecordNotify(0, qid, qid, ts, time.Now().UnixNano())
	}
	return e.n.Consume(hyperplane.QID(qid))
}

func (e *telemetryEngine) Close() { e.n.Close() }

// --- harness -------------------------------------------------------------

// runCell repeats runTrial and reports the median trial. The median (not
// the minimum) is deliberate: under preemption the global-mutex engine
// convoys — a producer descheduled while holding the lock stalls every
// other goroutine — and that is engine cost to be measured, not machine
// noise to be filtered. Taking the fastest trial would erase exactly the
// pathology the banked engine removes.
func runCell(mk func(int) engine, producers, queues, ops, trials, batch int) (nsOp, allocsOp float64) {
	ns := make([]float64, trials)
	allocs := make([]float64, trials)
	for t := 0; t < trials; t++ {
		ns[t], allocs[t] = runTrial(mk, producers, queues, ops, batch)
	}
	sort.Float64s(ns)
	sort.Float64s(allocs)
	return ns[trials/2], allocs[trials/2]
}

// runTrial drives the full protocol for ops items and returns ns/op and
// allocs/op. batch <= 1 means one Notify per item; batch > 1 means each
// producer rings doorbells per item but coalesces notification into one
// NotifyBatch per burst (the IngressBatch production pattern).
func runTrial(mk func(int) engine, producers, queues, ops, batch int) (nsOp, allocsOp float64) {
	e := mk(queues)
	defer e.Close()
	dbs := make([]atomic.Int64, queues)
	qids := make([]int, queues)
	for i := range qids {
		qids[i] = e.Register(&dbs[i])
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		iters := ops / producers
		if p < ops%producers {
			iters++
		}
		wg.Add(1)
		go func(p, iters int) {
			defer wg.Done()
			if batch <= 1 {
				for i := 0; i < iters; i++ {
					q := (p + i*producers) % queues
					dbs[q].Add(1)
					e.Notify(qids[q])
				}
				return
			}
			buf := make([]hyperplane.QID, 0, batch)
			for i := 0; i < iters; i++ {
				q := (p + i*producers) % queues
				dbs[q].Add(1)
				buf = append(buf, hyperplane.QID(qids[q]))
				if len(buf) == batch || i == iters-1 {
					e.NotifyBatch(buf)
					buf = buf[:0]
				}
			}
		}(p, iters)
	}
	// Wait once per ready queue, claim the doorbell's whole backlog in one
	// Swap (the dataplane's batch-dequeue service), then Reconsider/
	// Consume. The consumer keeps up in steady state, so the cell is
	// producer-bound and the number isolates the doorbell + Notify fan-in
	// path — the path this engine swap changes.
	consumed := 0
	for consumed < ops {
		qid, ok := e.Wait()
		if !ok {
			log.Fatal("engine closed mid-run")
		}
		consumed += int(dbs[qid].Swap(0))
		e.Consume(qid)
	}
	wg.Wait()

	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	nsOp = float64(elapsed.Nanoseconds()) / float64(ops)
	allocsOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
	return nsOp, allocsOp
}

// cellResult reports, per engine, the per-item Notify path and the
// batched (NotifyBatch burst) path. speedup_vs_mutex compares each
// engine's best path: the retired engine has no batching to exploit (its
// NotifyBatch is a Notify loop over the same global lock), while batch
// notification is part of the banked engine's design and is how the
// dataplane produces (IngressBatch).
type cellResult struct {
	Producers       int     `json:"producers"`
	Queues          int     `json:"queues"`
	MutexNsOp       float64 `json:"mutex_ns_op"`
	MutexBatchNsOp  float64 `json:"mutex_batch_ns_op"`
	MutexAllocsOp   float64 `json:"mutex_allocs_op"`
	BankedNsOp      float64 `json:"banked_ns_op"`
	BankedBatchNsOp float64 `json:"banked_batch_ns_op"`
	BankedAllocsOp  float64 `json:"banked_allocs_op"`
	SpeedupNotify   float64 `json:"speedup_notify_vs_mutex"`
	Speedup         float64 `json:"speedup_vs_mutex"`
}

type report struct {
	benchmeta.Host
	OpsPerCell int          `json:"ops_per_cell"`
	Trials     int          `json:"trials_per_cell"`
	Cells      []cellResult `json:"cells"`
}

func parseList(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			log.Fatalf("bad list entry %q", f)
		}
		out = append(out, v)
	}
	return out
}

func mutexMk(q int) engine     { return newMutexEngine(q) }
func bankedMk(q int) engine    { return newBankedEngine(q) }
func telemetryMk(q int) engine { return newTelemetryEngine(q) }

// measureCell runs both engines' per-item and batched paths for one grid
// cell and fills in the derived speedups.
func measureCell(p, q, ops, trials, batch int) cellResult {
	var c cellResult
	c.Producers, c.Queues = p, q
	c.MutexNsOp, c.MutexAllocsOp = runCell(mutexMk, p, q, ops, trials, 1)
	c.MutexBatchNsOp, _ = runCell(mutexMk, p, q, ops, trials, batch)
	c.BankedNsOp, c.BankedAllocsOp = runCell(bankedMk, p, q, ops, trials, 1)
	c.BankedBatchNsOp, _ = runCell(bankedMk, p, q, ops, trials, batch)
	c.SpeedupNotify = c.MutexNsOp / c.BankedNsOp
	c.Speedup = math.Min(c.MutexNsOp, c.MutexBatchNsOp) / math.Min(c.BankedNsOp, c.BankedBatchNsOp)
	fmt.Fprintf(os.Stderr,
		"p%d_q%d: mutex %.1f/%.1f ns/op, banked %.1f/%.1f ns/op (notify %.2fx, best %.2fx)\n",
		p, q, c.MutexNsOp, c.MutexBatchNsOp, c.BankedNsOp, c.BankedBatchNsOp,
		c.SpeedupNotify, c.Speedup)
	return c
}

// warmup exercises the scheduler and code paths once per engine.
func warmup(ops int) {
	runTrial(mutexMk, 4, 16, ops/10+1, 1)
	runTrial(bankedMk, 4, 16, ops/10+1, 1)
}

// checkAgainst re-measures every cell of a stored report and fails if any
// best-path speedup falls more than tolerance below the recorded one.
func checkAgainst(path string, tolerance float64, ops, trials, batch int) {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("parse %s: %v", path, err)
	}
	if len(base.Cells) == 0 {
		log.Fatalf("%s has no cells", path)
	}
	warmup(ops)
	failed := 0
	for _, bc := range base.Cells {
		c := measureCell(bc.Producers, bc.Queues, ops, trials, batch)
		floor := bc.Speedup * (1 - tolerance)
		status := "ok"
		if c.Speedup < floor {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("p%d_q%d: best-path speedup %.2fx, baseline %.2fx, floor %.2fx — %s\n",
			bc.Producers, bc.Queues, c.Speedup, bc.Speedup, floor, status)
	}
	if failed > 0 {
		log.Fatalf("%d of %d cells regressed beyond %.0f%% of %s",
			failed, len(base.Cells), tolerance*100, path)
	}
	fmt.Printf("all %d cells within %.0f%% of %s\n", len(base.Cells), tolerance*100, path)
}

// telemetryCheck measures the banked engine with and without a telemetry
// plane attached on the same grid, both freshly measured on this machine,
// and fails (exit 1) if the enabled engine's per-item Notify path is more
// than tolerance slower in any cell. This pins the acceptance criterion
// that sampling at the default 1/64 rate costs a branch, not a lock.
func telemetryCheck(producerList, queueList []int, tolerance float64, ops, trials int) {
	warmup(ops)
	runTrial(telemetryMk, 4, 16, ops/10+1, 1)
	failed := 0
	cells := 0
	for _, p := range producerList {
		for _, q := range queueList {
			cells++
			disabled, _ := runCell(bankedMk, p, q, ops, trials, 1)
			enabled, _ := runCell(telemetryMk, p, q, ops, trials, 1)
			overhead := enabled/disabled - 1
			status := "ok"
			if overhead > tolerance {
				status = "OVERHEAD"
				failed++
			}
			fmt.Printf("p%d_q%d: disabled %.1f ns/op, telemetry %.1f ns/op (%+.1f%%) — %s\n",
				p, q, disabled, enabled, overhead*100, status)
		}
	}
	if failed > 0 {
		log.Fatalf("%d of %d cells exceed %.0f%% telemetry overhead", failed, cells, tolerance*100)
	}
	fmt.Printf("all %d cells within %.0f%% telemetry overhead\n", cells, tolerance*100)
}

func main() {
	producers := flag.String("producers", "1,8,64", "comma-separated producer counts")
	queues := flag.String("queues", "16,256,1024", "comma-separated queue counts")
	ops := flag.Int("ops", 2000000, "items per trial per engine")
	trials := flag.Int("trials", 5, "trials per cell; median reported")
	batch := flag.Int("batch", 16, "producer burst size for the batched columns")
	out := flag.String("out", "", "output JSON path (default stdout)")
	check := flag.String("check", "", "guard mode: baseline report to re-measure and compare against")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional speedup regression in -check mode")
	telCheck := flag.Bool("telemetry-check", false,
		"guard mode: fail if telemetry-enabled Notify exceeds disabled by -telemetry-tolerance")
	telTolerance := flag.Float64("telemetry-tolerance", 0.05,
		"allowed fractional overhead of the telemetry-enabled engine in -telemetry-check mode")
	flag.Parse()

	if *telCheck {
		telemetryCheck(parseList(*producers), parseList(*queues), *telTolerance, *ops, *trials)
		return
	}
	if *check != "" {
		checkAgainst(*check, *tolerance, *ops, *trials, *batch)
		return
	}

	rep := report{
		Host:       benchmeta.Collect(),
		OpsPerCell: *ops,
		Trials:     *trials,
	}
	warmup(*ops)
	for _, p := range parseList(*producers) {
		for _, q := range parseList(*queues) {
			rep.Cells = append(rep.Cells, measureCell(p, q, *ops, *trials, *batch))
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := benchmeta.WriteFileAtomic(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// Command hyperplane-sim runs a single configurable simulation of a
// software data plane — spinning or HyperPlane-accelerated — and prints
// its throughput, latency, IPC, and power measurements.
//
// Examples:
//
//	hyperplane-sim -plane spinning -queues 1000 -shape SQ -saturate
//	hyperplane-sim -plane hyperplane -cores 4 -cluster 4 -load 0.7
//	hyperplane-sim -workload crypto-forwarding -queues 256 -load 0.3 -power-optimized
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hyperplane"
)

func main() {
	var (
		plane    = flag.String("plane", "hyperplane", "plane: spinning | hyperplane")
		wl       = flag.String("workload", "packet-encapsulation", "workload: "+strings.Join(hyperplane.Workloads(), " | "))
		shape    = flag.String("shape", "FB", "traffic shape: FB | PC | NC | SQ")
		cores    = flag.Int("cores", 1, "data plane cores (1-16)")
		cluster  = flag.Int("cluster", 1, "cores per shared-queue cluster (1=scale-out)")
		queues   = flag.Int("queues", 256, "total I/O queues")
		saturate = flag.Bool("saturate", false, "measure peak throughput instead of open-loop latency")
		load     = flag.Float64("load", 0.5, "offered load fraction (open-loop mode)")
		popt     = flag.Bool("power-optimized", false, "let halted cores enter C1")
		swReady  = flag.Bool("software-ready-set", false, "use the software ready-set iterator")
		banks    = flag.Int("banks", 0, "monitoring-set banks (distributed directory); 0 = unified")
		imb      = flag.Float64("imbalance", 0, "static hot-queue imbalance toward cluster 0 (e.g. 0.1)")
		inOrder  = flag.Bool("in-order", false, "preserve per-queue processing order (no intra-queue concurrency)")
		steal    = flag.Bool("steal", false, "HyperPlane work stealing across clusters")
		policy   = flag.String("policy", "rr", "service policy: rr | wrr | strict | drr | ewma")
		dur      = flag.Duration("duration", 20*time.Millisecond, "simulated measurement window")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		traceN   = flag.Int("trace", 0, "print the first N notification-protocol events")
	)
	flag.Parse()

	pol, err := hyperplane.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperplane-sim: unknown policy %q (want rr | wrr | strict | drr | ewma)\n", *policy)
		os.Exit(2)
	}

	cfg := hyperplane.SimConfig{
		Plane:            hyperplane.Plane(*plane),
		Workload:         *wl,
		Shape:            hyperplane.TrafficShape(*shape),
		Cores:            *cores,
		ClusterSize:      *cluster,
		Queues:           *queues,
		Policy:           pol,
		Saturate:         *saturate,
		Load:             *load,
		PowerOptimized:   *popt,
		SoftwareReadySet: *swReady,
		MonitorBanks:     *banks,
		InOrder:          *inOrder,
		WorkStealing:     *steal,
		Imbalance:        *imb,
		Duration:         *dur,
		Seed:             *seed,
	}
	if *traceN > 0 {
		remaining := *traceN
		cfg.OnTrace = func(at time.Duration, kind string, core, qid int) {
			if remaining <= 0 {
				return
			}
			remaining--
			if core < 0 {
				fmt.Printf("%12v %-9s qid=%d\n", at, kind, qid)
			} else {
				fmt.Printf("%12v %-9s core=%d qid=%d\n", at, kind, core, qid)
			}
		}
	}

	start := time.Now()
	r, err := hyperplane.Simulate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperplane-sim:", err)
		os.Exit(1)
	}

	mode := fmt.Sprintf("open-loop @ %.0f%% load", *load*100)
	if *saturate {
		mode = "saturation (peak throughput)"
	}
	fmt.Printf("plane=%s workload=%s shape=%s cores=%d cluster=%d queues=%d %s\n",
		*plane, *wl, *shape, *cores, *cluster, *queues, mode)
	fmt.Printf("  completed tasks      %d\n", r.Completed)
	fmt.Printf("  throughput           %.4f M tasks/s\n", r.ThroughputMTasks)
	if !*saturate {
		fmt.Printf("  latency avg/p50      %v / %v\n", r.AvgLatency, r.P50Latency)
		fmt.Printf("  latency p99/max      %v / %v\n", r.P99Latency, r.MaxLatency)
	}
	fmt.Printf("  IPC useful/useless   %.3f / %.3f (overall %.3f)\n",
		r.UsefulIPC, r.UselessIPC, r.OverallIPC)
	fmt.Printf("  core power           %.2f W\n", r.AvgPowerW)
	if r.SpuriousWakeups > 0 {
		fmt.Printf("  spurious wake-ups    %d\n", r.SpuriousWakeups)
	}
	if r.LockContention > 0 {
		fmt.Printf("  lock contention      %d\n", r.LockContention)
	}
	fmt.Printf("  (simulated in %v)\n", time.Since(start).Round(time.Millisecond))
}

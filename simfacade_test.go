package hyperplane

import (
	"strings"
	"testing"
	"time"
)

func TestSimulateDefaults(t *testing.T) {
	r, err := Simulate(SimConfig{Saturate: true, Duration: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 || r.ThroughputMTasks <= 0 {
		t.Errorf("result = %+v", r)
	}
}

func TestSimulateSpinningVsHyperPlane(t *testing.T) {
	mk := func(p Plane) SimResult {
		r, err := Simulate(SimConfig{
			Plane:    p,
			Shape:    SingleQueue,
			Queues:   512,
			Saturate: true,
			Duration: 4 * time.Millisecond,
			Seed:     3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	spin := mk(PlaneSpinning)
	hp := mk(PlaneHyperPlane)
	if hp.ThroughputMTasks <= spin.ThroughputMTasks {
		t.Errorf("HyperPlane (%v) should beat spinning (%v) at 512 queues SQ",
			hp.ThroughputMTasks, spin.ThroughputMTasks)
	}
}

func TestSimulateOpenLoopLatency(t *testing.T) {
	r, err := Simulate(SimConfig{
		Plane:    PlaneHyperPlane,
		Load:     0.3,
		Queues:   64,
		Duration: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgLatency <= 0 || r.P99Latency < r.AvgLatency {
		t.Errorf("latency stats: avg=%v p99=%v", r.AvgLatency, r.P99Latency)
	}
}

func TestSimulateValidation(t *testing.T) {
	cases := []SimConfig{
		{Workload: "bogus"},
		{Shape: "XX"},
		{Plane: "warp"},
		{Policy: Policy{Kind: PolicyKind(9)}},
		{Load: 9},
	}
	for i, c := range cases {
		if _, err := Simulate(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 6 {
		t.Fatalf("workloads = %v", ws)
	}
	found := false
	for _, w := range ws {
		if w == "erasure-coding" {
			found = true
		}
	}
	if !found {
		t.Error("erasure-coding missing")
	}
}

func TestFiguresAndReproduce(t *testing.T) {
	figs := Figures()
	if len(figs) != 25 {
		t.Fatalf("figures = %d", len(figs))
	}
	out, err := ReproduceFigure("table1", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !strings.Contains(out[0].Text, "Table I") {
		t.Errorf("table1 output: %+v", out)
	}
	if _, err := ReproduceFigure("nope", true, 1); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestReproduceQuickFig3a(t *testing.T) {
	out, err := ReproduceFigure("fig3a", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := out[0]
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	if f.CSV == "" || f.Text == "" {
		t.Error("missing renderings")
	}
}

func TestSimulateOnTrace(t *testing.T) {
	kinds := map[string]int{}
	_, err := Simulate(SimConfig{
		Plane:    PlaneHyperPlane,
		Queues:   8,
		Load:     0.3,
		Duration: 2 * time.Millisecond,
		OnTrace: func(at time.Duration, kind string, core, qid int) {
			if at < 0 {
				t.Error("negative trace time")
			}
			kinds[kind]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"arrival", "activate", "qwait", "dequeue", "complete"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events traced (%v)", k, kinds)
		}
	}
}

func TestSimulateMWaitPlane(t *testing.T) {
	r, err := Simulate(SimConfig{
		Plane:    PlaneMWait,
		Queues:   64,
		Load:     0.2,
		Duration: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Error("mwait plane completed nothing")
	}
}

func TestSimulateNUMAAndStealing(t *testing.T) {
	r, err := Simulate(SimConfig{
		Plane:        PlaneHyperPlane,
		Cores:        4,
		ClusterSize:  1,
		Sockets:      2,
		Queues:       80,
		Shape:        PropConcentrated,
		Load:         0.5,
		Imbalance:    0.5,
		WorkStealing: true,
		Duration:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Error("NUMA config completed nothing")
	}
}

func TestSimulateBursty(t *testing.T) {
	r, err := Simulate(SimConfig{
		Queues:     32,
		Load:       0.4,
		Burstiness: 4,
		Duration:   8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Error("bursty config completed nothing")
	}
}

package dataplane

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The kill -9 experiment re-execs the test binary as a producer/consumer
// child sharing a WAL dir with the parent, SIGKILLs it mid-burst, then
// recovers in-process and audits the durability contract:
//
//  1. zero acked-item loss: every id the child reported durable is
//     consumed exactly once across the two lives (pre-crash or replay);
//  2. replay never double-delivers: no duplicate ids in the recovery run;
//  3. the dedup window survives the crash: producer retries of replayed
//     ids are rejected.
//
// Ids consumed pre-crash whose ack fsync did not complete legitimately
// replay (at-least-once) — the child's report protocol orders every
// CONSUMED line before the only WALSync that can persist its ack, so a
// durable ack always implies a report the parent saw, and "lost" ids
// cannot be false positives.
const chaosChildEnv = "HYPERPLANE_CHAOS_WAL_DIR"

func chaosDurableConfig(dir string) Config {
	return Config{
		Tenants:      2,
		Workers:      1,
		RingCapacity: 4096,
		Durable: DurableConfig{
			Dir: dir,
			// Commits happen only at explicit WALSync: the child's
			// control loop owns the consumed-report / ack-persist
			// ordering, so no background fsync may sneak an ack to
			// disk before its CONSUMED line is on the pipe.
			FsyncEvery:  time.Hour,
			DedupWindow: 1 << 16,
		},
	}
}

// TestChaosDurableKill9Child is the re-exec helper: flood both tenants
// with sequential message ids, consume, and report durability watermarks
// over stdout until the parent kills the process.
func TestChaosDurableKill9Child(t *testing.T) {
	dir := os.Getenv(chaosChildEnv)
	if dir == "" {
		t.Skip("helper process for TestChaosDurableKill9")
	}
	p, err := New(chaosDurableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()

	// Producers: one per tenant (ingress is single-producer per tenant),
	// sequential ids from 1, retry on backpressure. nextID[tn] is read by
	// the control loop only through the data race-free rule "admitted
	// before incremented": a snapshot taken before WALSync is a sound
	// lower bound for what that sync makes durable.
	var admitted [2]atomic.Uint64
	for tn := 0; tn < 2; tn++ {
		go func(tn int) {
			for id := uint64(1); ; id++ {
				payload := make([]byte, 8)
				binary.LittleEndian.PutUint64(payload, id)
				for p.IngressID(tn, id, payload) != IngressAccepted {
					time.Sleep(10 * time.Microsecond)
				}
				admitted[tn].Store(id)
			}
		}(tn)
	}

	// Control loop: pop a bounded batch, report each consumed id, then
	// WALSync (persisting both the new appends and those acks), then
	// report the durable watermarks. Stdout writes are line-buffered and
	// flushed before the sync so a post-sync kill cannot orphan a
	// durable ack without its CONSUMED line.
	w := bufio.NewWriter(os.Stdout)
	for {
		for tn := 0; tn < 2; tn++ {
			for i := 0; i < 64; i++ {
				out, ok := p.Egress(tn)
				if !ok {
					break
				}
				fmt.Fprintf(w, "CONSUMED %d %d\n", tn, binary.LittleEndian.Uint64(out))
			}
		}
		snap := [2]uint64{admitted[0].Load(), admitted[1].Load()}
		if err := w.Flush(); err != nil {
			os.Exit(3)
		}
		if err := p.WALSync(); err != nil {
			fmt.Fprintf(os.Stderr, "child WALSync: %v\n", err)
			os.Exit(3)
		}
		for tn := 0; tn < 2; tn++ {
			fmt.Fprintf(w, "DURABLE %d %d\n", tn, snap[tn])
		}
		if err := w.Flush(); err != nil {
			os.Exit(3)
		}
	}
}

func TestChaosDurableKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos experiment")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestChaosDurableKill9Child$")
	cmd.Env = append(os.Environ(), chaosChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Stream the child's report until both tenants have a non-zero
	// durable watermark and a few sync rounds have landed, then SIGKILL
	// mid-burst. A torn final line (killed mid-write) is ignored by the
	// scanner's framing.
	durable := [2]uint64{}
	pre := [2]map[uint64]int{{}, {}}
	lines := make(chan string, 1024)
	scanErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		scanErr <- sc.Err()
	}()
	rounds := 0
	deadline := time.After(30 * time.Second)
collect:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("child exited before being killed (scan err %v)", <-scanErr)
			}
			var tn int
			var id uint64
			if n, _ := fmt.Sscanf(line, "DURABLE %d %d", &tn, &id); n == 2 {
				if id > durable[tn] {
					durable[tn] = id
				}
				if tn == 1 {
					rounds++
				}
				if rounds >= 5 && durable[0] > 0 && durable[1] > 0 {
					break collect
				}
			} else if n, _ := fmt.Sscanf(line, "CONSUMED %d %d", &tn, &id); n == 2 {
				pre[tn][id]++
			}
		case <-deadline:
			t.Fatal("child produced no durable watermark within 30s")
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	for line := range lines { // drain reports already in flight
		var tn int
		var id uint64
		if n, _ := fmt.Sscanf(line, "CONSUMED %d %d", &tn, &id); n == 2 {
			pre[tn][id]++
		}
		// Post-kill DURABLE lines are ignored: the kill races the sync,
		// so they are not a sound bound.
	}
	_ = cmd.Wait()
	t.Logf("killed child: durable watermarks=%v pre-crash consumed=[%d %d]",
		durable, len(pre[0]), len(pre[1]))

	// Phase 2: recover in-process and consume everything that replays.
	p, err := New(chaosDurableConfig(dir))
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	p.Start()
	defer p.Stop()

	post := [2]map[uint64]int{{}, {}}
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for tn := 0; tn < 2; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for {
				out, ok := p.Egress(tn)
				if !ok {
					select {
					case <-stop:
						return
					default:
						time.Sleep(100 * time.Microsecond)
						continue
					}
				}
				id := binary.LittleEndian.Uint64(out)
				mu.Lock()
				post[tn][id]++
				mu.Unlock()
			}
		}(tn)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	err = p.Drain(ctx)
	cancel()
	if err != nil {
		t.Fatalf("recovery drain: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool { return p.Stats().OutBacklog == 0 })
	close(stop)
	wg.Wait()

	st := p.Stats()
	t.Logf("recovery: replayed=%d post-crash consumed=[%d %d]",
		st.Replayed, len(post[0]), len(post[1]))

	for tn := 0; tn < 2; tn++ {
		// (1) zero acked-item loss: every durable id was delivered in
		// one of the two lives.
		var lost, dupPost int
		for id := uint64(1); id <= durable[tn]; id++ {
			if pre[tn][id] == 0 && post[tn][id] == 0 {
				lost++
				if lost <= 5 {
					t.Errorf("tenant %d: durable id %d lost (never consumed)", tn, id)
				}
			}
		}
		// (2) the recovery run never double-delivers, and never invents
		// ids (pre-crash delivery may legitimately repeat in post only
		// when its ack fsync did not complete — at-least-once).
		for id, n := range post[tn] {
			if n > 1 {
				dupPost++
				if dupPost <= 5 {
					t.Errorf("tenant %d: id %d delivered %d times during recovery", tn, id, n)
				}
			}
			if id == 0 {
				t.Errorf("tenant %d: invented id 0 in recovery", tn)
			}
		}
		if lost > 0 || dupPost > 0 {
			t.Fatalf("tenant %d: %d lost, %d duplicated of %d durable", tn, lost, dupPost, durable[tn])
		}
		// (3) the dedup window survived the crash: a producer retry of a
		// replayed id is rejected.
		for id := range post[tn] {
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, id)
			if got := p.IngressID(tn, id, payload); got != IngressDuplicate {
				t.Fatalf("tenant %d: retry of replayed id %d = %v, want duplicate", tn, id, got)
			}
			break
		}
		if len(post[tn]) == 0 && durable[tn] > uint64(len(pre[tn])) {
			t.Errorf("tenant %d: expected a replay backlog (durable=%d pre=%d)", tn, durable[tn], len(pre[tn]))
		}
	}
}

package dataplane_test

import (
	"fmt"

	"hyperplane/dataplane"
)

// A complete software data plane: ingress on the device side, transport
// processing in QWAIT-notified workers, delivery to the tenant side.
func Example() {
	p, _ := dataplane.New(dataplane.Config{
		Tenants: 2,
		Handler: func(tenant int, pkt []byte) ([]byte, error) {
			return append(pkt, '!'), nil
		},
	})
	p.Start()
	defer p.Stop()

	p.Ingress(1, []byte("hi"))
	out, ok := p.EgressWait(1)
	fmt.Println(string(out), ok)
	// Output: hi! true
}

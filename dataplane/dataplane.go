// Package dataplane assembles the full software-data-plane architecture of
// the HyperPlane paper's Fig. 2 as a real, runnable Go runtime:
//
//	device-side queues  ->  data plane workers  ->  tenant-side queues
//	      (1a/1b)               (2a..2d)                  (3)
//
// An emulated I/O device (or any producer) calls Ingress to place work on a
// tenant's device-side queue and ring its doorbell. Data plane workers are
// notified through the QWAIT runtime (hyperplane.Notifier) — or, for
// baseline comparison, by spin-polling — run the transport Handler, deliver
// the result to the tenant-side queue, and ring the tenant's doorbell.
// Tenants consume with Egress/EgressWait.
//
// The plane degrades instead of dying: handler panics are recovered and
// counted, a supervisor restarts crashed workers with capped exponential
// backoff, tenant-side backpressure is governed by a configurable delivery
// policy so one stalled tenant cannot head-of-line-block its worker, and
// tenants whose handlers fail repeatedly are quarantined via the paper's
// QWAIT-DISABLE primitive and re-probed with backoff. See DESIGN.md
// "Failure model & degradation".
//
// The package is the software analogue of the simulated planes in
// internal/sdp, usable for real measurements on real hardware (see
// BenchmarkPlaneNotify/BenchmarkPlaneSpin).
package dataplane

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane"
	"hyperplane/internal/queue"
	"hyperplane/internal/telemetry"
)

// item is what actually travels the rings: the payload plus the durable
// tier's per-tenant sequence number and the producer's message id. On
// in-memory planes seq and msgID are 0 and the wrapper costs nothing but
// the struct copy; on durable planes seq keys the WAL ack at egress and
// msgID keys the dedup window.
type item struct {
	seq     uint64
	msgID   uint64
	payload []byte
	// tag is the producer's opaque per-item cookie (IngressItem.Tag),
	// handed back on the egress hook like a NIC completion cookie. Zero
	// for untagged items; meaningless without Config.OnDeliver.
	tag uint64
}

// Handler performs transport processing on one work item (step 2b). It
// returns the payload to deliver tenant-side; a nil result drops the item.
type Handler func(tenant int, payload []byte) ([]byte, error)

// BatchHandler performs transport processing on a whole drained batch in
// one call, replacing each payloads[i] in place with the result to
// deliver (nil drops that item). Returning an error — or panicking —
// rejects the batch attempt as a whole: the plane then replays the batch
// item by item through Handler, so only the poisoned item is dropped and
// error/panic/quarantine accounting stays identical to per-item dispatch.
// A BatchHandler must therefore leave items it did not successfully
// process intact, and should agree semantically with the configured
// Handler (its per-item fallback).
type BatchHandler func(tenant int, payloads [][]byte) error

// Mode selects the notification mechanism of the data plane workers.
type Mode uint8

// Notification modes.
const (
	// Notify blocks workers in QWAIT (hyperplane.Notifier) — the
	// HyperPlane model. Workers park as soon as a sweep comes up empty.
	Notify Mode = iota
	// Spin makes workers iterate over their queues at full tilt — the
	// software-only baseline.
	Spin
	// Hybrid is Notify with the spin-then-park wait strategy: workers
	// dwell in a bounded spin (the paper's C0) before parking (C1),
	// paying a little idle CPU to dodge the wake cost when traffic is
	// about to arrive. The spin budget is hyperplane.DefaultSpinBudget
	// unless Config.Governor.SpinBudget overrides it.
	Hybrid
)

func (m Mode) String() string {
	switch m {
	case Notify:
		return "notify"
	case Spin:
		return "spin"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode maps a CLI-friendly name to its Mode.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "notify":
		return Notify, nil
	case "spin":
		return Spin, nil
	case "hybrid":
		return Hybrid, nil
	}
	return 0, fmt.Errorf("dataplane: unknown mode %q (want notify, spin or hybrid)", name)
}

// DeliveryPolicy selects what a worker does when a tenant-side ring is full
// (a stalled or slow tenant consumer). Block preserves every item but can
// hold the worker; the drop policies charge the stalled tenant instead of
// head-of-line-blocking every other tenant in the worker's partition.
type DeliveryPolicy uint8

// Delivery policies.
const (
	// Block waits for ring space, bounded by Config.DeliveryTimeout when
	// set (unbounded when zero — the legacy behavior). On timeout the item
	// is dropped and counted in Stats.Dropped.
	Block DeliveryPolicy = iota
	// DropNewest drops the just-processed item when the tenant ring is
	// full; the worker never waits.
	DropNewest
	// DropOldest evicts the oldest undelivered item to make room for the
	// new one; the worker never waits and the tenant sees the freshest
	// results.
	DropOldest
)

func (d DeliveryPolicy) String() string {
	switch d {
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	}
	return "block"
}

// QuarantineConfig governs tenant quarantine: a tenant whose handler fails
// (error or panic) Threshold times in a row is disabled via the notifier's
// QWAIT-DISABLE primitive, so its backlog stops costing worker time, and is
// re-probed after a backoff that doubles on every failed probe.
type QuarantineConfig struct {
	// Threshold is the consecutive-failure count that quarantines a
	// tenant. 0 disables quarantine.
	Threshold int
	// Backoff is the delay before the first re-probe (default 10ms).
	Backoff time.Duration
	// BackoffMax caps the probe-failure doubling (default 1s).
	BackoffMax time.Duration
}

// Config describes a Plane.
type Config struct {
	// Tenants is the number of tenant queue pairs (device-side RX +
	// tenant-side delivery).
	Tenants int
	// Workers is the number of data plane goroutines; tenant queues are
	// partitioned across workers (scale-out, matching the SPSC rings).
	Workers int
	// RingCapacity sizes each ring (power of two; default 1024).
	RingCapacity int
	// Mode selects QWAIT-style notification (default) or spin-polling.
	Mode Mode
	// Policy is the per-worker service policy in Notify mode.
	Policy hyperplane.Policy
	// Handler is the transport-processing function; nil defaults to echo.
	Handler Handler
	// BatchHandler, if set, processes each drained batch in one call
	// instead of invoking Handler per item; Handler remains the per-item
	// fallback used to replay a failed batch. See the BatchHandler type.
	BatchHandler BatchHandler
	// MaxBatch bounds how many items a worker drains from one tenant
	// queue per service turn (one PopBatch, one doorbell decrement, one
	// policy charge). 0 defaults to 32; 1 retains per-item dispatch — the
	// benchmarked baseline. StrictPriority always services per item so the
	// lowest ready QID is re-evaluated between items.
	MaxBatch int
	// SharedIngress backs the device-side queues with multi-producer
	// (MPSC) rings, so any number of goroutines may Ingress the same
	// tenant concurrently — the paper's shared-queue organization. The
	// default SPSC rings admit one producer per tenant.
	SharedIngress bool
	// Steal enables the scale-up shared-consumer organization in Notify
	// mode: all workers share ONE banked notifier (one ready-set bank per
	// worker, home bank = worker id), device-side rings become
	// multi-consumer (MPMC) so any worker may drain any tenant, and a
	// worker whose home bank is empty claims ready tenants from sibling
	// banks before parking (hyperplane.StealConfig semantics) — so idle
	// workers absorb a hot tenant's backlog instead of parking next to
	// it. Tenant-side delivery rings become multi-producer for the same
	// reason. Spin mode ignores it (the spin loop already owns its
	// partition outright).
	Steal bool
	// StealQuantum bounds how many tenant QIDs one steal claims from a
	// victim bank (default 8; see hyperplane.StealConfig.Quantum).
	StealQuantum int
	// Governor enables the elastic worker control plane: a telemetry-fed
	// loop that halts surplus workers (parking them on the striped
	// parker, the runtime analog of C1 core halting), re-grows the set on
	// backlog spikes, and autotunes MaxBatch and the EWMA policy alpha
	// from observed arrival rates. Requires a notification mode (Notify
	// or Hybrid); like Steal, it shares one banked notifier across the
	// pool so a halted worker's tenants are drained by the remaining
	// active workers. See GovernorConfig.
	Governor GovernorConfig
	// Delivery selects the tenant-side full-ring policy (default Block).
	Delivery DeliveryPolicy
	// DeliveryTimeout bounds Block per item; 0 waits until the plane
	// stops. Ignored by the drop policies.
	DeliveryTimeout time.Duration
	// Quarantine configures failing-tenant quarantine; the zero value
	// disables it.
	Quarantine QuarantineConfig
	// RestartBackoff is the supervisor's initial delay before restarting
	// a crashed worker (default 1ms); it doubles per consecutive crash up
	// to RestartBackoffMax (default 250ms).
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// Durable enables the opt-in per-tenant durability tier when its Dir
	// is non-empty: ingress appends to a group-committed WAL, egress acks
	// truncate it, recovery replays un-acked items through normal
	// ingress, IngressID deduplicates producer retries, and items the
	// plane would otherwise lose land in a per-tenant dead-letter queue.
	// See DESIGN.md §12.
	Durable DurableConfig
	// OnDeliver, when non-nil, replaces the tenant-side delivery rings
	// with a synchronous egress hook: workers invoke it in-line for every
	// item that completes transport processing, and the Egress* surfaces
	// stay empty. A non-nil payload is a delivered result (the hook owns
	// fanning it out; the payload must not be retained after the call on
	// planes whose producers recycle buffers). A nil payload retires an
	// item that produced no output — handler consumed it, handler error,
	// or handler panic — so a producer attaching per-item resources via
	// IngressItem.Tag can release them exactly once per admitted item.
	// The hook runs on worker goroutines and must not block: tenant-side
	// backpressure is the hook owner's problem (the network edge applies
	// per-connection drop policies), so Delivery/DeliveryTimeout are
	// ignored. On durable planes the hook call acks the item's WAL record.
	OnDeliver func(tenant int, payload []byte, tag uint64)
	// Telemetry, when non-nil, attaches the plane to a telemetry plane:
	// per-tenant counters and ready-set/bank state become scrapeable, the
	// worker notifiers trace sampled notification latency (closed at
	// handler dispatch), and /debug/tenants shows quarantine and backlog
	// state. The telemetry plane must be sized for at least Tenants
	// tenants. Nil disables export and tracing; the plane still keeps its
	// striped counters for Stats().
	Telemetry *telemetry.T
}

// Stats is a snapshot of plane activity. The durable-tier fields
// (Replayed, Deduped, DeadLettered, DLQDepth) stay zero on in-memory
// planes; Dropped includes the persisted pre-crash base on durable
// planes, so it is monotone across crash and recovery.
type Stats struct {
	Ingressed    int64 // items accepted by Ingress (incl. replayed)
	Processed    int64 // items run through the Handler
	Delivered    int64 // items placed on tenant-side queues
	Errors       int64 // handler errors (item dropped)
	Panics       int64 // handler panics recovered (item dropped)
	Dropped      int64 // items dropped by the delivery policy
	Replayed     int64 // WAL records re-admitted after recovery
	Deduped      int64 // duplicate message ids rejected by IngressID
	DeadLettered int64 // items captured by the dead-letter queue
	Restarts     int64 // worker restarts by the supervisor
	Backlog      int   // items currently queued device-side
	OutBacklog   int   // items currently queued tenant-side
	Quarantined  int   // tenants currently quarantined (incl. probing)
	DLQDepth     int   // items currently parked in dead-letter queues
}

// Tenant quarantine states.
const (
	tsHealthy     int32 = iota
	tsQuarantined       // disabled, waiting out its backoff
	tsProbing           // re-enabled; next outcome decides
)

// tenantState is the per-tenant failure tracker. streak and state are
// atomics because the worker (handle) and the quarantine supervisor read
// them without the lock; transitions take mu.
type tenantState struct {
	streak     atomic.Int32
	state      atomic.Int32
	mu         sync.Mutex
	backoff    time.Duration
	reenableAt time.Time
}

// ForwardFunc receives the items Ingress/IngressBatch would otherwise
// have pushed onto a tenant's local device ring while a per-tenant
// forward is installed (SetTenantForward), and returns how many it
// accepted. It is the plane-level half of cluster tenant handoff: once
// installed, the tenant's new arrivals bypass the local rings entirely —
// typically into a bridge that re-encodes them for the tenant's new
// owner. The function runs on the producer's goroutine and must treat
// the payloads as borrowed: copy anything it keeps before returning
// (items staged by the network edge recycle their slab buffers as soon
// as the plane retires the item's tag, which happens immediately after
// the forward returns).
type ForwardFunc func(items []IngressItem) int

// Plane is a running software data plane.
type Plane struct {
	cfg Config

	devRings []queue.Buffer[item] // per tenant, device side (SPSC/MPSC/MPMC)
	outRings []queue.Buffer[item] // per tenant, tenant side (SPSC; MPSC under Steal)
	// fwd holds each tenant's installed forward (nil = ingest locally).
	// The local hot path pays one atomic load + nil check per
	// Ingress/run.
	fwd []atomic.Pointer[ForwardFunc]
	// tenantInflight counts items a worker is actively handling per
	// tenant (popped and inside handle/handleBatch). DrainTenant needs
	// it because Processed is charged at handler entry: counters alone
	// cannot distinguish "done" from "stuck in the handler".
	tenantInflight []atomic.Int64
	// egressScratch is each tenant's reusable EgressBatch pop buffer. The
	// delivery rings admit one consumer per tenant (outMu serializes the
	// DropOldest evictor separately), so the single-consumer contract that
	// protects the ring protects this buffer too.
	egressScratch [][]item
	// dur is the durable tier (nil on in-memory planes). See durable.go.
	dur *durable
	// shared is the resolved pool organization: Steal or Governor in a
	// notification mode. The workers then share one banked notifier (one
	// bank per worker) over MPMC device rings and drain via
	// WaitHomeBatch, so any worker can service any tenant — which is what
	// lets a halted or busy worker's tenants be picked up by the rest of
	// the pool. steal additionally enables cross-bank claiming on that
	// shared notifier.
	shared bool
	steal  bool
	// maxBatch is the live per-dispatch batch cap, MaxBatch at rest; the
	// governor retunes it from observed arrival rates.
	maxBatch atomic.Int32
	// gov is the elastic worker control plane (nil when disabled). See
	// governor.go.
	gov *govRuntime
	// outMu serializes the two tenant-side consumers that exist under
	// DropOldest (the tenant and the evicting worker); unused otherwise.
	outMu []sync.Mutex
	// planPool recycles IngressBatch's per-call NotifyBatch staging (one
	// QID run per worker), keeping batched ingress allocation-free at
	// steady state even with many concurrent producers.
	planPool sync.Pool

	workers []*worker
	tstate  []tenantState

	tenantNotifiers []*hyperplane.Notifier // one per tenant (delivery side)
	tenantQIDs      []hyperplane.QID

	// m holds the plane's activity counters as per-tenant, per-worker
	// striped grids (telemetry.Metrics); Stats() and the export plane both
	// read it merge-on-read. Unlike the old global atomics, every series
	// counts only completed effects (an item is Ingressed once its push
	// succeeded), so each counter is monotone under concurrent snapshots.
	m   *telemetry.Metrics
	tel *telemetry.T // nil = export/tracing disabled

	// ingressed/completed are Drain's bookkeeping pair: ingressed is
	// pre-counted before the push (and undone on backpressure) so Drain
	// never observes a pushed-but-uncounted item. They are internal —
	// Stats() reports the monotone grid counters instead.
	ingressed  atomic.Int64
	completed  atomic.Int64 // items fully through handle (any outcome)
	inQuar     atomic.Int64 // currently quarantined tenants
	ingressing atomic.Int64 // in-flight Ingress/IngressBatch calls

	started atomic.Bool
	stopped atomic.Bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// worker owns a partition of tenant device-side queues. QID<->tenant
// routing uses dense slices: the worker registers its tenants in order,
// so its notifier QIDs are 0..len(tenants)-1 and both lookups are a
// bounds check and a load on the hot path.
type worker struct {
	id          int
	tenants     []int // tenant ids served by this worker
	n           *hyperplane.Notifier
	home        int              // home bank on the shared notifier (steal mode)
	tenantOf    []int            // notifier QID -> tenant id
	qidByTenant []hyperplane.QID // tenant id -> notifier QID (-1 = not ours)
	stop        atomic.Bool
	// pending is the unprocessed remainder of the current notify batch;
	// the supervisor re-offers it after a crash so no tenant is stranded.
	pending []hyperplane.QID
	// scratch is the reusable drain buffer one PopBatch fills per service
	// turn; payloads is the []byte view of it handed to the BatchHandler;
	// outs collects the non-nil batch-handler results for bulk delivery.
	// All live for the worker's lifetime, so the dispatch loop allocates
	// nothing per item.
	scratch  []item
	payloads [][]byte
	outs     []item
	// crashNext induces a worker-loop panic: a test hook for the
	// supervisor (handler panics are recovered in handle and never reach
	// it).
	crashNext atomic.Bool
}

// Errors returned by the Plane.
var (
	// ErrNotStarted is returned by Stop/Drain before Start.
	ErrNotStarted = errors.New("dataplane: plane not started")
	// ErrStopped is returned by Drain when the plane stopped with work
	// still queued (nothing will ever drain it).
	ErrStopped = errors.New("dataplane: plane stopped")
)

// New builds a Plane; call Start to launch the workers.
func New(cfg Config) (*Plane, error) {
	if cfg.Tenants < 1 {
		return nil, fmt.Errorf("dataplane: Tenants must be positive, got %d", cfg.Tenants)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Workers > cfg.Tenants {
		cfg.Workers = cfg.Tenants
	}
	if cfg.RingCapacity == 0 {
		cfg.RingCapacity = 1024
	}
	if cfg.Handler == nil {
		cfg.Handler = func(_ int, payload []byte) ([]byte, error) { return payload, nil }
	}
	if cfg.Mode > Hybrid {
		return nil, fmt.Errorf("dataplane: unknown mode %d", cfg.Mode)
	}
	if cfg.Delivery > DropOldest {
		return nil, fmt.Errorf("dataplane: unknown delivery policy %d", cfg.Delivery)
	}
	if cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("dataplane: MaxBatch must be >= 0, got %d", cfg.MaxBatch)
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxBatch > cfg.RingCapacity {
		cfg.MaxBatch = cfg.RingCapacity
	}
	if cfg.Quarantine.Threshold < 0 {
		return nil, fmt.Errorf("dataplane: Quarantine.Threshold must be >= 0, got %d", cfg.Quarantine.Threshold)
	}
	if cfg.Quarantine.Threshold > 0 {
		if cfg.Quarantine.Backoff <= 0 {
			cfg.Quarantine.Backoff = 10 * time.Millisecond
		}
		if cfg.Quarantine.BackoffMax <= 0 {
			cfg.Quarantine.BackoffMax = time.Second
		}
		if cfg.Quarantine.BackoffMax < cfg.Quarantine.Backoff {
			cfg.Quarantine.BackoffMax = cfg.Quarantine.Backoff
		}
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = time.Millisecond
	}
	if cfg.RestartBackoffMax <= 0 {
		cfg.RestartBackoffMax = 250 * time.Millisecond
	}
	if cfg.RestartBackoffMax < cfg.RestartBackoff {
		cfg.RestartBackoffMax = cfg.RestartBackoff
	}
	if cfg.Telemetry != nil && cfg.Telemetry.Tenants() < cfg.Tenants {
		return nil, fmt.Errorf("dataplane: telemetry plane sized for %d tenants, plane has %d",
			cfg.Telemetry.Tenants(), cfg.Tenants)
	}
	if cfg.StealQuantum < 0 {
		return nil, fmt.Errorf("dataplane: StealQuantum must be >= 0, got %d", cfg.StealQuantum)
	}
	if err := cfg.Governor.validate(cfg); err != nil {
		return nil, err
	}
	p := &Plane{
		cfg:            cfg,
		fwd:            make([]atomic.Pointer[ForwardFunc], cfg.Tenants),
		tenantInflight: make([]atomic.Int64, cfg.Tenants),
		tstate:         make([]tenantState, cfg.Tenants),
		outMu:          make([]sync.Mutex, cfg.Tenants),
		egressScratch:  make([][]item, cfg.Tenants),
		stopCh:         make(chan struct{}),
		m:              telemetry.NewMetrics(cfg.Tenants, cfg.Workers),
		tel:            cfg.Telemetry,
		steal:          cfg.Steal && cfg.Mode != Spin,
		shared:         (cfg.Steal || cfg.Governor.Enable) && cfg.Mode != Spin,
	}
	p.maxBatch.Store(int32(cfg.MaxBatch))

	// Egress-hook planes never touch the tenant-side rings; keep them at
	// the minimum capacity so a large RingCapacity is not paid twice.
	outCap := cfg.RingCapacity
	if cfg.OnDeliver != nil {
		outCap = 2
	}
	for t := 0; t < cfg.Tenants; t++ {
		var dr, or queue.Buffer[item]
		var err error
		switch {
		case p.shared:
			// Any worker may drain any tenant: the device ring needs
			// multiple concurrent consumers (and SharedIngress producers
			// come for free with it).
			dr, err = queue.NewMPMC[item](cfg.RingCapacity)
		case cfg.SharedIngress:
			dr, err = queue.NewMPSC[item](cfg.RingCapacity)
		default:
			dr, err = queue.NewRing[item](cfg.RingCapacity)
		}
		if err != nil {
			return nil, err
		}
		if p.shared {
			// Any worker may deliver to any tenant: the delivery ring needs
			// multiple producers. Its consumers (the tenant, plus the
			// evicting worker under DropOldest) serialize on outMu exactly
			// like the SPSC ring's DropOldest consumers do.
			or, err = queue.NewMPSC[item](outCap)
		} else {
			or, err = queue.NewRing[item](outCap)
		}
		if err != nil {
			return nil, err
		}
		p.devRings = append(p.devRings, dr)
		p.outRings = append(p.outRings, or)

		// Tenant-side notification: each tenant gets its own single-queue
		// notifier so EgressWait blocks exactly like a tenant core would
		// on its doorbell.
		tn, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{MaxQueues: 1})
		if err != nil {
			return nil, err
		}
		qid, err := tn.Register(or.Doorbell())
		if err != nil {
			return nil, err
		}
		p.tenantNotifiers = append(p.tenantNotifiers, tn)
		p.tenantQIDs = append(p.tenantQIDs, qid)
	}

	// Shared-pool organization (steal and/or governor): one banked
	// notifier for the whole pool, one bank per worker (capped at
	// MaxShards). Tenants register in order, so QID == tenant and
	// bank-of-tenant == tenant mod shards — the same interleave the
	// per-worker partition uses, which makes each worker's home bank hold
	// exactly its own partition's tenants. With stealing disabled (a
	// governor-only plane), WaitHomeBatch's no-steal path falls back to a
	// full sweep across every bank, so a halted worker's tenants are
	// still drained — the governor's liveness backstop.
	var shared *hyperplane.Notifier
	var sharedTenantOf []int
	var sharedQIDs []hyperplane.QID
	if p.shared {
		sn, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{
			MaxQueues: cfg.Tenants,
			Policy:    cfg.Policy,
			Shards:    cfg.Workers,
			Telemetry: cfg.Telemetry,
			Steal:     hyperplane.StealConfig{Enable: p.steal, Quantum: cfg.StealQuantum},
			Wait:      p.initialWaitConfig(),
		})
		if err != nil {
			return nil, err
		}
		sharedTenantOf = make([]int, cfg.Tenants)
		sharedQIDs = make([]hyperplane.QID, cfg.Tenants)
		for t := 0; t < cfg.Tenants; t++ {
			qid, err := sn.Register(p.devRings[t].Doorbell())
			if err != nil {
				return nil, err
			}
			sharedTenantOf[qid] = t
			sharedQIDs[t] = qid
		}
		shared = sn
	}

	// Partition tenants across workers round-robin; in Notify mode each
	// worker gets its own notifier over its partition (or, in steal mode,
	// a home bank on the shared one).
	for w := 0; w < cfg.Workers; w++ {
		wk := &worker{
			id:       w,
			scratch:  make([]item, cfg.MaxBatch),
			payloads: make([][]byte, 0, cfg.MaxBatch),
			outs:     make([]item, 0, cfg.MaxBatch),
		}
		for t := w; t < cfg.Tenants; t += cfg.Workers {
			wk.tenants = append(wk.tenants, t)
		}
		switch {
		case p.shared:
			wk.n = shared
			wk.home = w % shared.Shards()
			wk.tenantOf = sharedTenantOf
			wk.qidByTenant = sharedQIDs
		case cfg.Mode != Spin:
			n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{
				MaxQueues: len(wk.tenants),
				Policy:    cfg.Policy,
				Telemetry: cfg.Telemetry,
				Wait:      p.initialWaitConfig(),
			})
			if err != nil {
				return nil, err
			}
			wk.tenantOf = make([]int, len(wk.tenants))
			wk.qidByTenant = make([]hyperplane.QID, cfg.Tenants)
			for t := range wk.qidByTenant {
				wk.qidByTenant[t] = -1
			}
			for _, t := range wk.tenants {
				qid, err := n.Register(p.devRings[t].Doorbell())
				if err != nil {
					return nil, err
				}
				wk.tenantOf[qid] = t
				wk.qidByTenant[t] = qid
			}
			wk.n = n
		}
		p.workers = append(p.workers, wk)
	}
	nWorkers := len(p.workers)
	p.planPool = sync.Pool{New: func() any {
		return &notifyPlan{perWorker: make([][]hyperplane.QID, nWorkers)}
	}}
	if cfg.Governor.Enable {
		gov, err := newGovRuntime(cfg)
		if err != nil {
			return nil, err
		}
		p.gov = gov
	}
	// Durable tier last: wal.Open starts the group committer, so nothing
	// that can still fail may follow it.
	if cfg.Durable.Dir != "" {
		dur, err := newDurable(cfg)
		if err != nil {
			return nil, err
		}
		p.dur = dur
		// Seed the drop series with the persisted pre-crash bases so
		// Stats.Dropped (and every export surface over the grid) stays
		// monotone across crash and recovery.
		for t := range dur.tenants {
			if base := dur.tenants[t].dropped.Load(); base > 0 {
				p.m.Dropped.Add(p.m.IngressStripe(), t, int64(base))
			}
		}
	}
	if p.tel != nil {
		p.tel.AttachMetrics(p.m)
		p.tel.SetDebug(func() any { return p.DebugSnapshot() })
		p.tel.AttachCollector(p.writeRuntimeMetrics)
	}
	return p, nil
}

// Start launches the data plane workers under supervision.
func (p *Plane) Start() {
	if !p.started.CompareAndSwap(false, true) {
		return
	}
	for _, wk := range p.workers {
		p.wg.Add(1)
		go p.supervise(wk)
	}
	if p.gov != nil {
		p.wg.Add(1)
		go p.governLoop()
	}
	if p.cfg.Quarantine.Threshold > 0 {
		p.wg.Add(1)
		go p.quarantineLoop()
	}
	if p.dur != nil && len(p.dur.replay) > 0 {
		// Re-admit the recovery set through normal ingress, concurrently
		// with new traffic — the workers drain it like any other burst.
		p.wg.Add(1)
		go p.replayLoop()
	}
}

// Stop terminates the workers promptly and closes the notifiers: items
// being handled finish (including the remainder of a batch a worker has
// already drained from a device ring), queued backlog is abandoned. Use StopContext to
// bound a drain of queued work first. Stop is idempotent, and once it
// returns, Ingress and IngressBatch deterministically reject.
func (p *Plane) Stop() error {
	if !p.started.Load() {
		return ErrNotStarted
	}
	if !p.stopped.CompareAndSwap(false, true) {
		return nil
	}
	close(p.stopCh)
	// Let in-flight Ingress/IngressBatch calls finish before closing the
	// worker notifiers they may be about to Notify.
	for p.ingressing.Load() != 0 {
		runtime.Gosched()
	}
	for _, wk := range p.workers {
		wk.stop.Store(true)
		if wk.n != nil {
			wk.n.Close() // wake blocked QWAITs
		}
	}
	p.wg.Wait()
	for _, tn := range p.tenantNotifiers {
		tn.Close()
	}
	if p.dur != nil {
		// Final group commit: every ack taken before Stop is persisted, so
		// a clean shutdown replays nothing that was consumed.
		return p.dur.log.Close()
	}
	return nil
}

// Stopped reports whether Stop has begun: once true, Ingress and
// IngressBatch deterministically reject, so producers retrying on
// backpressure can tell a full ring from a dead plane.
func (p *Plane) Stopped() bool { return p.stopped.Load() }

// StopContext drains queued work until ctx expires, then stops the plane
// regardless. It returns the drain error (nil when the plane emptied in
// time) — the plane is stopped either way.
func (p *Plane) StopContext(ctx context.Context) error {
	err := p.Drain(ctx)
	if stopErr := p.Stop(); stopErr != nil && err == nil {
		err = stopErr
	}
	return err
}

// Drain blocks until every item accepted by Ingress has fully passed
// through the plane (delivered, dropped, or rejected by the handler) or
// ctx is done. Quarantined tenants hold their backlog until re-probed, so
// a drain during quarantine only completes once the probe succeeds — bound
// it with ctx.
func (p *Plane) Drain(ctx context.Context) error {
	if !p.started.Load() {
		return ErrNotStarted
	}
	for {
		// ingressed is incremented before an item becomes visible to
		// workers (and decremented on push failure), so equality with
		// completed means no hidden in-flight work. Recovery replay counts
		// as pending until every record is re-admitted.
		if p.ingressing.Load() == 0 && p.completed.Load() == p.ingressed.Load() &&
			(p.dur == nil || p.dur.replayPending.Load() == 0) {
			return nil
		}
		if p.stopped.Load() {
			return ErrStopped
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// SetTenantForward installs (or, with nil, clears) a per-tenant forward:
// while set, Ingress and IngressBatch hand the tenant's new arrivals to
// fn instead of the local rings. Items already queued locally are not
// affected — pair with DrainTenant to flush them before completing a
// handoff. Concurrent producers may race the installation; an Ingress
// call that loaded the pre-swap nil can still push locally immediately
// after SetTenantForward returns, which DrainTenant's settling loop
// absorbs.
func (p *Plane) SetTenantForward(tenant int, fn ForwardFunc) error {
	if tenant < 0 || tenant >= p.cfg.Tenants {
		return fmt.Errorf("dataplane: tenant %d out of range [0,%d)", tenant, p.cfg.Tenants)
	}
	if fn == nil {
		p.fwd[tenant].Store(nil)
		return nil
	}
	p.fwd[tenant].Store(&fn)
	return nil
}

// forwardRun hands a same-tenant run to an installed forward and retires
// the accepted items' tags: the remote owner delivers the payloads, but
// tag-attached resources (edge slab references) live on this node and
// must be released here, exactly as if the item had been admitted and
// dropped by policy. The forward copies synchronously, so the tags are
// safe to release as soon as it returns. Unaccepted items keep their
// tags — the producer still owns them, mirroring IngressBatch's
// contract for dropped items.
func (p *Plane) forwardRun(fn ForwardFunc, items []IngressItem) int {
	pushed := fn(items)
	if pushed > len(items) {
		pushed = len(items)
	}
	for k := 0; k < pushed; k++ {
		if items[k].Tag != 0 {
			p.retire(items[k].Tenant, item{tag: items[k].Tag})
		}
	}
	return pushed
}

// DrainTenant blocks until one tenant's ingress side looks settled —
// device ring empty and the tenant's processed counter caught up with
// its ingressed counter, observed stable across two consecutive polls —
// or ctx is done. It is the per-tenant analogue of Drain's
// counter-settling loop, used by cluster handoff: install the forward,
// drain the tenant, then transfer ownership. Items already delivered to
// the out ring stay available to Egress (handoff moves ingress
// ownership, not unconsumed egress). The double poll bridges the window
// where a worker has popped an item but not yet finished its handler;
// like Drain, a quarantined tenant only settles once its probe
// succeeds, so bound the call with ctx.
func (p *Plane) DrainTenant(ctx context.Context, tenant int) error {
	if tenant < 0 || tenant >= p.cfg.Tenants {
		return fmt.Errorf("dataplane: tenant %d out of range [0,%d)", tenant, p.cfg.Tenants)
	}
	if !p.started.Load() {
		return ErrNotStarted
	}
	settled := false
	for {
		if p.stopped.Load() {
			return ErrStopped
		}
		c := p.m.TenantCounts(tenant)
		idle := p.devRings[tenant].Len() == 0 &&
			p.tenantInflight[tenant].Load() == 0 &&
			c.Processed >= c.Ingressed
		if idle && settled {
			return nil
		}
		settled = idle
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// TenantBacklog reports one tenant's current queue occupancy (device
// ring, out ring) — the cluster layer polls it to size handoff waits.
func (p *Plane) TenantBacklog(tenant int) (device, out int) {
	if tenant < 0 || tenant >= p.cfg.Tenants {
		return 0, 0
	}
	return p.devRings[tenant].Len(), p.outRings[tenant].Len()
}

// Ingress places a work item on a tenant's device-side queue (the emulated
// NIC's DMA + doorbell). It returns false on backpressure (ring full),
// invalid tenant, or a stopped plane; after Stop returns it always returns
// false and never touches the closed notifiers.
func (p *Plane) Ingress(tenant int, payload []byte) bool {
	if tenant < 0 || tenant >= p.cfg.Tenants {
		return false
	}
	if fnp := p.fwd[tenant].Load(); fnp != nil {
		one := [1]IngressItem{{Tenant: tenant, Payload: payload}}
		return p.forwardRun(*fnp, one[:]) == 1
	}
	if p.dur != nil {
		// Durable planes route every admission through the WAL path;
		// plain Ingress items are anonymous (no dedup).
		return p.ingressDurable(tenant, 0, payload) == IngressAccepted
	}
	p.ingressing.Add(1)
	defer p.ingressing.Add(-1)
	if p.stopped.Load() {
		return false
	}
	// Count before the push so Drain never sees a pushed-but-uncounted
	// item; undo on backpressure.
	p.ingressed.Add(1)
	if !p.devRings[tenant].Push(item{payload: payload}) {
		p.ingressed.Add(-1)
		return false
	}
	p.m.Ingressed.Add(p.m.IngressStripe(), tenant, 1)
	if p.cfg.Mode != Spin {
		w := p.workers[tenant%p.cfg.Workers]
		w.n.Notify(w.qidByTenant[tenant])
	}
	return true
}

// IngressItem pairs a tenant with a payload for batch ingress. Tag is an
// opaque per-item cookie handed back to Config.OnDeliver when the item
// is delivered or retired (0 = untagged); planes without an egress hook
// ignore it.
type IngressItem struct {
	Tenant  int
	Payload []byte
	Tag     uint64
}

// notifyPlan is IngressBatch's reusable NotifyBatch staging: the QIDs to
// ring per worker, pooled via planPool so the batch path allocates
// nothing at steady state.
type notifyPlan struct {
	perWorker [][]hyperplane.QID
}

// runPool recycles IngressBatch's bulk-push staging buffers. The buffer
// escapes through the Buffer interface call, so a plain local would
// allocate per call; pooling keeps batched ingress allocation-free at
// steady state even with many concurrent producers.
var runPool = sync.Pool{New: func() any { return new([64]item) }}

// IngressBatch places a burst of work items in one call (the emulated
// device's batched DMA + coalesced doorbells): payloads are pushed first
// and each worker's doorbells are rung once via NotifyBatch, amortizing
// waiter wakeups across the burst. It returns the number of items
// accepted; items for invalid tenants or full rings are dropped, like
// Ingress. After Stop returns it deterministically accepts nothing.
func (p *Plane) IngressBatch(items []IngressItem) int {
	p.ingressing.Add(1)
	defer p.ingressing.Add(-1)
	if p.stopped.Load() {
		return 0
	}
	// Over-count up front (see Ingress) and settle after the loop.
	p.ingressed.Add(int64(len(items)))
	var plan *notifyPlan
	var perWorker [][]hyperplane.QID
	if p.cfg.Mode != Spin {
		plan = p.planPool.Get().(*notifyPlan)
		perWorker = plan.perWorker
	}
	accepted := 0  // pushed onto local rings (counted in ingressed)
	forwarded := 0 // handed to per-tenant forwards (owned remotely)
	run := runPool.Get().(*[64]item)
	defer func() {
		clear(run[:]) // release payload references before pooling
		runPool.Put(run)
	}()
	for i := 0; i < len(items); {
		tenant := items[i].Tenant
		j := i + 1
		for j < len(items) && items[j].Tenant == tenant {
			j++
		}
		if tenant < 0 || tenant >= p.cfg.Tenants {
			i = j
			continue
		}
		if fnp := p.fwd[tenant].Load(); fnp != nil {
			// Forwarded runs never touch the local rings or counters:
			// the remote owner ingresses (and counts) them, so they are
			// excluded from this plane's ingressed/completed balance —
			// Drain must not wait for work that completes elsewhere.
			forwarded += p.forwardRun(*fnp, items[i:j])
			i = j
			continue
		}
		pushed := 0
		switch {
		case p.dur != nil:
			// Durable runs assign seqs and append WAL records under one
			// admission-mutex hold per run — the durable bulk path.
			pushed = p.ingressBatchDurable(tenant, items[i:j], run)
		case j-i == 1:
			if p.devRings[tenant].Push(item{payload: items[i].Payload, tag: items[i].Tag}) {
				pushed = 1
			}
		default:
			// Same-tenant run: bulk-push in chunks, paying one cursor
			// publish and one doorbell increment per chunk instead of per
			// item. A short PushBatch means the ring is full; the rest of
			// the run is dropped like per-item Ingress would drop it.
			for off := i; off < j; {
				c := j - off
				if c > len(run) {
					c = len(run)
				}
				for k := 0; k < c; k++ {
					run[k] = item{payload: items[off+k].Payload, tag: items[off+k].Tag}
				}
				got := p.devRings[tenant].PushBatch(run[:c])
				pushed += got
				off += got
				if got < c {
					break
				}
			}
		}
		accepted += pushed
		if pushed > 0 {
			p.m.Ingressed.Add(p.m.IngressStripe(), tenant, int64(pushed))
		}
		if pushed > 0 && perWorker != nil {
			// One entry per run suffices: NotifyBatch activations coalesce
			// duplicates of the same QID anyway.
			w := tenant % p.cfg.Workers
			perWorker[w] = append(perWorker[w], p.workers[w].qidByTenant[tenant])
		}
		i = j
	}
	if accepted != len(items) {
		p.ingressed.Add(int64(accepted - len(items)))
	}
	for w, qids := range perWorker {
		if len(qids) > 0 {
			p.workers[w].n.NotifyBatch(qids)
		}
	}
	if plan != nil {
		for w := range perWorker {
			perWorker[w] = perWorker[w][:0]
		}
		p.planPool.Put(plan)
	}
	return accepted + forwarded
}

// popOut dequeues from a tenant-side ring. Under DropOldest the ring has
// two competing consumers (the tenant and the evicting worker), so pops
// serialize on the tenant's mutex; every other policy keeps the lock-free
// SPSC fast path.
func (p *Plane) popOut(tenant int) (item, bool) {
	if p.cfg.Delivery == DropOldest {
		p.outMu[tenant].Lock()
		v, ok := p.outRings[tenant].Pop()
		p.outMu[tenant].Unlock()
		return v, ok
	}
	return p.outRings[tenant].Pop()
}

// Egress pops one processed item from a tenant's delivery queue without
// blocking. On a durable plane the pop acks the item's WAL record — the
// consumption watermark persists at the next group commit.
func (p *Plane) Egress(tenant int) ([]byte, bool) {
	if tenant < 0 || tenant >= p.cfg.Tenants {
		return nil, false
	}
	v, ok := p.popOut(tenant)
	if ok {
		p.ackItem(tenant, v)
		p.tenantNotifiers[tenant].Reconsider(p.tenantQIDs[tenant])
	}
	return v.payload, ok
}

// EgressBatch pops up to len(dst) processed items from a tenant's
// delivery queue without blocking — one doorbell decrement and one
// notifier round-trip for the whole batch. It returns the number popped.
// On a durable plane each popped item's WAL record is acked.
func (p *Plane) EgressBatch(tenant int, dst [][]byte) int {
	if tenant < 0 || tenant >= p.cfg.Tenants || len(dst) == 0 {
		return 0
	}
	sc := p.egressScratch[tenant]
	if cap(sc) < len(dst) {
		sc = make([]item, len(dst))
		p.egressScratch[tenant] = sc
	}
	sc = sc[:len(dst)]
	var n int
	if p.cfg.Delivery == DropOldest {
		p.outMu[tenant].Lock()
		n = p.outRings[tenant].PopBatch(sc)
		p.outMu[tenant].Unlock()
	} else {
		n = p.outRings[tenant].PopBatch(sc)
	}
	for i := 0; i < n; i++ {
		dst[i] = sc[i].payload
		p.ackItem(tenant, sc[i])
	}
	clear(sc[:n]) // release payload references
	if n > 0 {
		p.tenantNotifiers[tenant].Reconsider(p.tenantQIDs[tenant])
	}
	return n
}

// EgressWait blocks until an item is available for the tenant (the tenant
// core's own QWAIT) or the plane stops.
func (p *Plane) EgressWait(tenant int) ([]byte, bool) {
	if tenant < 0 || tenant >= p.cfg.Tenants {
		return nil, false
	}
	tn := p.tenantNotifiers[tenant]
	qid := p.tenantQIDs[tenant]
	for {
		if _, ok := tn.Wait(); !ok {
			// Closed: drain any remaining item without blocking.
			v, got := p.popOut(tenant)
			if got {
				p.ackItem(tenant, v)
			}
			return v.payload, got
		}
		v, ok := p.popOut(tenant)
		tn.Consume(qid)
		if ok {
			p.ackItem(tenant, v)
			return v.payload, true
		}
	}
}

// supervise runs a worker until clean exit, restarting it after crashes
// with capped exponential backoff — the plane degrades rather than
// silently orphaning the worker's whole tenant partition.
func (p *Plane) supervise(wk *worker) {
	defer p.wg.Done()
	backoff := p.cfg.RestartBackoff
	for {
		if p.runWorker(wk) {
			return // clean exit (plane stopping)
		}
		p.m.Restarts.Add(1)
		select {
		case <-p.stopCh:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > p.cfg.RestartBackoffMax {
			backoff = p.cfg.RestartBackoffMax
		}
	}
}

// runWorker executes one worker incarnation, converting a panic anywhere
// in the loop into a restartable crash. Notify-mode batch entries not yet
// processed are re-offered to the notifier so their tenants are not
// stranded with activated-but-unserviced queues.
func (p *Plane) runWorker(wk *worker) (clean bool) {
	defer func() {
		if r := recover(); r != nil {
			for _, qid := range wk.pending {
				wk.n.Consume(qid)
			}
			wk.pending = nil
		}
	}()
	if p.cfg.Mode != Spin {
		p.runNotify(wk)
	} else {
		p.runSpin(wk)
	}
	return true
}

// runNotify is the QWAIT worker loop (Algorithm 1 of the paper), batched
// end to end: WaitBatch drains several ready queues per wakeup, each ready
// queue is drained with one PopBatch into the worker's reusable scratch
// buffer (one doorbell decrement, zero allocations), and ConsumeN bills
// the policy the real batch size before re-arming.
func (p *Plane) runNotify(wk *worker) {
	// Strict priority must re-evaluate the lowest ready QID after every
	// item, so it gets a wait batch of one (see Notifier.WaitBatch docs)
	// and a drain of one item per turn.
	size := 32
	strict := p.cfg.Policy.Kind == hyperplane.StrictPriority.Kind
	if strict {
		size = 1
	}
	batch := make([]hyperplane.QID, size)
	for {
		if p.gov != nil {
			// Halt gate: a worker shrunk out of the active set blocks here
			// (the C1 drop) until the governor re-admits it or the plane
			// stops. Its tenants keep flowing through the shared notifier.
			p.gov.gate(p, wk)
		}
		if wk.crashNext.CompareAndSwap(true, false) {
			panic("dataplane: induced worker crash")
		}
		// The drain bound is re-read per turn: the governor retunes it live
		// from the observed arrival rate.
		drain := 1
		if !strict {
			drain = int(p.maxBatch.Load())
		}
		var c int
		if p.shared {
			// Home bank first; then, with stealing on, claim from a hot
			// sibling before parking (ConsumeN routes a stolen tenant's
			// batch charge back to its victim bank automatically), or, with
			// stealing off, fall back to a full sweep across every bank.
			c = wk.n.WaitHomeBatch(wk.home, batch)
		} else {
			c = wk.n.WaitBatch(batch)
		}
		if c == 0 {
			return // notifier closed by Stop
		}
		wk.pending = batch[:c]
		for len(wk.pending) > 0 {
			qid := wk.pending[0]
			wk.pending = wk.pending[1:]
			tenant := wk.tenantOf[qid]
			// Handler dispatch: close the sampled notification span opened
			// at Notify time. TakeStamp is a constant 0 (one nil check)
			// when telemetry is disabled.
			if ts := wk.n.TakeStamp(qid); ts != 0 {
				p.tel.RecordNotify(wk.id, tenant, int(qid), ts, time.Now().UnixNano())
			}
			if drain == 1 {
				it, got := p.devRings[tenant].Pop()
				wk.n.Consume(qid)
				if got {
					p.tenantInflight[tenant].Add(1)
					p.handle(wk, tenant, it)
					p.tenantInflight[tenant].Add(-1)
				}
				continue
			}
			n := p.devRings[tenant].PopBatch(wk.scratch[:p.drainBound(tenant, drain)])
			wk.n.ConsumeN(qid, n)
			if n > 0 {
				p.handleBatch(wk, tenant, wk.scratch[:n])
				clear(wk.scratch[:n]) // release payload references
			}
		}
	}
}

// runSpin is the baseline loop: iterate over owned tenants at full tilt,
// skipping quarantined ones.
func (p *Plane) runSpin(wk *worker) {
	idle := 0
	for !wk.stop.Load() {
		if wk.crashNext.CompareAndSwap(true, false) {
			panic("dataplane: induced worker crash")
		}
		found := false
		for _, tenant := range wk.tenants {
			if p.cfg.Quarantine.Threshold > 0 && p.tstate[tenant].state.Load() == tsQuarantined {
				continue
			}
			if p.cfg.MaxBatch == 1 {
				it, got := p.devRings[tenant].Pop()
				if !got {
					continue
				}
				found = true
				p.tenantInflight[tenant].Add(1)
				p.handle(wk, tenant, it)
				p.tenantInflight[tenant].Add(-1)
				continue
			}
			n := p.devRings[tenant].PopBatch(wk.scratch[:p.drainBound(tenant, p.cfg.MaxBatch)])
			if n == 0 {
				continue
			}
			found = true
			p.handleBatch(wk, tenant, wk.scratch[:n])
			clear(wk.scratch[:n])
		}
		if !found {
			idle++
			if idle > 64 {
				// Stay honest to "spinning" while not starving the other
				// goroutines of this test process.
				runtime.Gosched()
			}
		} else {
			idle = 0
		}
	}
}

// drainBound caps a service turn's batch for unhealthy tenants: a tenant
// under quarantine (or being probed) gets exactly one item, so a single
// handler outcome decides recovery vs re-quarantine — identical to
// per-item dispatch, where QWAIT-DISABLE fires before a second item can
// be popped. Healthy tenants drain the full configured batch.
func (p *Plane) drainBound(tenant, drain int) int {
	if p.cfg.Quarantine.Threshold > 0 && p.tstate[tenant].state.Load() != tsHealthy {
		return 1
	}
	return drain
}

// handleBatch services one drained batch. Without a BatchHandler (or for
// a batch of one) it runs the per-item path for every element, preserving
// per-item semantics exactly — the batch still won its single PopBatch,
// doorbell decrement, and policy charge. With a BatchHandler, a clean
// batch is accounted and delivered wholesale; a failed batch attempt
// (error or panic) is not counted at all and instead replays item by item
// through handle, so only the poisoned item is dropped and every counter
// (Processed, Errors, Panics, Dropped, quarantine streaks) lands exactly
// where per-item dispatch would put it.
func (p *Plane) handleBatch(wk *worker, tenant int, batch []item) {
	// Held across the whole batch: one counter update per batch, not per
	// item, and it covers the per-item and replay handle calls below
	// (handle itself does not count — its direct dispatch-loop callers
	// do).
	p.tenantInflight[tenant].Add(int64(len(batch)))
	defer p.tenantInflight[tenant].Add(-int64(len(batch)))
	if p.cfg.BatchHandler == nil || len(batch) == 1 {
		for i := range batch {
			p.handle(wk, tenant, batch[i])
		}
		return
	}
	// The BatchHandler sees the payload view; seqs and message ids stay
	// with the items, so results rejoin their WAL identity below.
	payloads := wk.payloads[:0]
	for i := range batch {
		payloads = append(payloads, batch[i].payload)
	}
	if !p.runBatchHandler(tenant, payloads) {
		// Replay from the view slice: a failed attempt may have replaced
		// some entries in place (its contract allows it for items it DID
		// process), and those results must not be re-processed.
		for i := range batch {
			it := batch[i]
			it.payload = payloads[i]
			p.handle(wk, tenant, it)
		}
		clear(payloads)
		return
	}
	p.m.Processed.Add(wk.id, tenant, int64(len(batch)))
	p.noteSuccess(tenant)
	outs := wk.outs[:0]
	for i := range batch {
		if payloads[i] != nil {
			outs = append(outs, item{seq: batch[i].seq, msgID: batch[i].msgID, payload: payloads[i], tag: batch[i].tag})
		} else {
			// The handler consumed the item without output: that is a
			// completed consumption, so the WAL record is acked.
			p.ackItem(tenant, batch[i])
			p.retire(tenant, batch[i])
		}
	}
	p.deliverBatch(wk, tenant, outs)
	clear(outs)
	clear(payloads)
	p.completed.Add(int64(len(batch)))
}

// runBatchHandler runs the BatchHandler with panic isolation, reporting
// whether the batch attempt succeeded. Failures are not counted here: the
// per-item replay that follows attributes errors and panics to the exact
// items that cause them.
func (p *Plane) runBatchHandler(tenant int, payloads [][]byte) (committed bool) {
	defer func() {
		if r := recover(); r != nil {
			committed = false
		}
	}()
	return p.cfg.BatchHandler(tenant, payloads) == nil
}

// handle runs transport processing and delivers to the tenant side.
// Failed items (error or panic) are dead-lettered on durable planes —
// including the failures that exhaust a quarantine streak — instead of
// vanishing; a nil handler result is a completed consumption and acks.
func (p *Plane) handle(wk *worker, tenant int, it item) {
	p.m.Processed.Add(wk.id, tenant, 1)
	defer p.completed.Add(1)
	out, err, panicked := p.runHandler(tenant, it.payload)
	if panicked {
		p.m.Panics.Add(wk.id, tenant, 1)
		p.noteFailure(tenant)
		p.deadLetter(wk.id, tenant, it, ReasonHandlerPanic)
		p.retire(tenant, it)
		return
	}
	if err != nil {
		p.m.Errors.Add(wk.id, tenant, 1)
		p.noteFailure(tenant)
		p.deadLetter(wk.id, tenant, it, ReasonHandlerError)
		p.retire(tenant, it)
		return
	}
	p.noteSuccess(tenant)
	if out == nil {
		p.ackItem(tenant, it)
		p.retire(tenant, it)
		return
	}
	it.payload = out
	p.deliver(wk, tenant, it)
}

// retire reports an item that completed without delivery to the egress
// hook (nil payload), so hook owners can release per-item resources
// attached via IngressItem.Tag exactly once per admitted item. No-op
// without a hook.
func (p *Plane) retire(tenant int, it item) {
	if p.cfg.OnDeliver != nil {
		p.cfg.OnDeliver(tenant, nil, it.tag)
	}
}

// runHandler isolates a handler panic to the item that caused it: the
// panic is recovered, counted in Stats.Panics, and fed to the quarantine
// tracker instead of killing the worker goroutine.
func (p *Plane) runHandler(tenant int, payload []byte) (out []byte, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			out, err, panicked = nil, nil, true
		}
	}()
	out, err = p.cfg.Handler(tenant, payload)
	return out, err, false
}

// deliver pushes a processed item to the tenant-side ring under the
// configured delivery policy and rings the tenant's doorbell. Every
// drop path routes through dropItem, so drop-policy victims are charged
// once and, on durable planes, dead-lettered exactly once. With an
// egress hook the ring is bypassed entirely: the hook is invoked
// in-line (it owns tenant-side backpressure) and the item is acked.
func (p *Plane) deliver(wk *worker, tenant int, out item) {
	if p.cfg.OnDeliver != nil {
		p.cfg.OnDeliver(tenant, out.payload, out.tag)
		p.m.Delivered.Add(wk.id, tenant, 1)
		p.ackItem(tenant, out)
		return
	}
	r := p.outRings[tenant]
	if !r.Push(out) {
		switch p.cfg.Delivery {
		case DropNewest:
			p.dropItem(wk.id, tenant, out, ReasonDropNewest)
			return
		case DropOldest:
			mu := &p.outMu[tenant]
			mu.Lock()
			var victim item
			var evicted bool
			if !r.Push(out) {
				victim, evicted = r.Pop()
				if !r.Push(out) {
					// Cannot happen with capacity >= 2 and a single
					// producer, but never wedge the worker over it.
					mu.Unlock()
					if evicted {
						p.dropItem(wk.id, tenant, victim, ReasonDropOldest)
					}
					p.dropItem(wk.id, tenant, out, ReasonDropOldest)
					return
				}
			}
			mu.Unlock()
			if evicted {
				p.dropItem(wk.id, tenant, victim, ReasonDropOldest)
			}
		default: // Block
			var deadline time.Time
			if p.cfg.DeliveryTimeout > 0 {
				deadline = time.Now().Add(p.cfg.DeliveryTimeout)
			}
			for !r.Push(out) {
				if p.stopped.Load() {
					p.dropItem(wk.id, tenant, out, ReasonStopDrop)
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					p.dropItem(wk.id, tenant, out, ReasonDeliveryTimeout)
					return
				}
				runtime.Gosched() // tenant-side backpressure
			}
		}
	}
	p.m.Delivered.Add(wk.id, tenant, 1)
	p.tenantNotifiers[tenant].Notify(p.tenantQIDs[tenant])
}

// deliverBatch pushes a batch of processed items to the tenant-side ring:
// whatever fits lands via one bulk copy, one doorbell increment, and one
// notify; the remainder goes through the per-item delivery policy. The
// bulk push is safe under every policy — the worker is the ring's only
// producer (in steal mode the ring is MPSC, so several stealing workers
// may produce concurrently), and DropOldest's competing consumers
// serialize on the tenant's mutex against each other, not against the
// producers.
func (p *Plane) deliverBatch(wk *worker, tenant int, outs []item) {
	if len(outs) == 0 {
		return
	}
	if p.cfg.OnDeliver != nil {
		for i := range outs {
			p.cfg.OnDeliver(tenant, outs[i].payload, outs[i].tag)
			p.ackItem(tenant, outs[i])
		}
		p.m.Delivered.Add(wk.id, tenant, int64(len(outs)))
		return
	}
	n := p.outRings[tenant].PushBatch(outs)
	if n > 0 {
		p.m.Delivered.Add(wk.id, tenant, int64(n))
		p.tenantNotifiers[tenant].Notify(p.tenantQIDs[tenant])
	}
	for _, out := range outs[n:] {
		p.deliver(wk, tenant, out) // full ring: apply the delivery policy
	}
}

// noteSuccess resets the tenant's failure streak and, if the success came
// from a quarantine probe, lifts the quarantine.
func (p *Plane) noteSuccess(tenant int) {
	if p.cfg.Quarantine.Threshold <= 0 {
		return
	}
	ts := &p.tstate[tenant]
	if ts.streak.Load() != 0 {
		ts.streak.Store(0)
	}
	if ts.state.Load() != tsProbing {
		return
	}
	ts.mu.Lock()
	if ts.state.Load() != tsProbing {
		ts.mu.Unlock()
		return
	}
	ts.state.Store(tsHealthy)
	ts.backoff = 0
	ts.mu.Unlock()
	p.inQuar.Add(-1)
}

// noteFailure advances the tenant's failure streak; at the threshold the
// tenant is quarantined (QWAIT-DISABLE), and a failure during a probe
// re-quarantines with doubled backoff.
func (p *Plane) noteFailure(tenant int) {
	q := p.cfg.Quarantine
	if q.Threshold <= 0 {
		return
	}
	ts := &p.tstate[tenant]
	streak := ts.streak.Add(1)
	switch ts.state.Load() {
	case tsHealthy:
		if int(streak) < q.Threshold {
			return
		}
		ts.mu.Lock()
		if ts.state.Load() != tsHealthy {
			ts.mu.Unlock()
			return
		}
		ts.backoff = q.Backoff
		ts.reenableAt = time.Now().Add(ts.backoff)
		ts.state.Store(tsQuarantined)
		ts.mu.Unlock()
		p.inQuar.Add(1)
		p.setTenantEnabled(tenant, false)
	case tsProbing:
		ts.mu.Lock()
		if ts.state.Load() != tsProbing {
			ts.mu.Unlock()
			return
		}
		ts.backoff *= 2
		if ts.backoff > q.BackoffMax {
			ts.backoff = q.BackoffMax
		}
		ts.reenableAt = time.Now().Add(ts.backoff)
		ts.state.Store(tsQuarantined)
		ts.mu.Unlock()
		p.setTenantEnabled(tenant, false)
	}
}

// setTenantEnabled flips the tenant's QWAIT-ENABLE/DISABLE bit on its
// worker's notifier (Notify mode; the spin loop checks the state word
// directly). Readiness keeps accruing while disabled, so re-enabling a
// backlogged tenant immediately reoffers it to QWAIT.
func (p *Plane) setTenantEnabled(tenant int, enabled bool) {
	if p.cfg.Mode == Spin {
		return
	}
	wk := p.workers[tenant%p.cfg.Workers]
	if enabled {
		_ = wk.n.Enable(wk.qidByTenant[tenant])
	} else {
		_ = wk.n.Disable(wk.qidByTenant[tenant])
	}
}

// quarantineLoop is the plane's quarantine supervisor: it re-probes
// quarantined tenants whose backoff has elapsed by re-enabling them; the
// first handler outcome after the probe decides recovery vs re-quarantine
// (with doubled backoff).
func (p *Plane) quarantineLoop() {
	defer p.wg.Done()
	tick := p.cfg.Quarantine.Backoff / 4
	if tick < 100*time.Microsecond {
		tick = 100 * time.Microsecond
	}
	if tick > 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-t.C:
		}
		now := time.Now()
		for tn := range p.tstate {
			ts := &p.tstate[tn]
			if ts.state.Load() != tsQuarantined {
				continue
			}
			ts.mu.Lock()
			if ts.state.Load() == tsQuarantined && !now.Before(ts.reenableAt) {
				ts.state.Store(tsProbing)
				ts.mu.Unlock()
				p.setTenantEnabled(tn, true)
			} else {
				ts.mu.Unlock()
			}
		}
	}
}

// Stats returns a snapshot of plane counters, merged on read from the
// per-tenant, per-worker telemetry grids. Every counter field is
// monotone non-decreasing across concurrent snapshots (Ingressed counts
// an item only once its ring push succeeded).
func (p *Plane) Stats() Stats {
	backlog := 0
	for _, r := range p.devRings {
		backlog += r.Len()
	}
	outBacklog := 0
	for _, r := range p.outRings {
		outBacklog += r.Len()
	}
	dlqDepth := 0
	if p.dur != nil {
		for t := range p.dur.tenants {
			dlqDepth += p.DLQDepth(t)
		}
	}
	snap := p.m.Snapshot()
	return Stats{
		Ingressed:    snap.Totals.Ingressed,
		Processed:    snap.Totals.Processed,
		Delivered:    snap.Totals.Delivered,
		Errors:       snap.Totals.Errors,
		Panics:       snap.Totals.Panics,
		Dropped:      snap.Totals.Dropped,
		Replayed:     snap.Totals.Replayed,
		Deduped:      snap.Totals.Deduped,
		DeadLettered: snap.Totals.DeadLettered,
		Restarts:     snap.Restarts,
		Backlog:      backlog,
		OutBacklog:   outBacklog,
		Quarantined:  int(p.inQuar.Load()),
		DLQDepth:     dlqDepth,
	}
}

// TenantStats returns one tenant's counter snapshot (merged on read).
func (p *Plane) TenantStats(tenant int) telemetry.TenantCounts {
	if tenant < 0 || tenant >= p.cfg.Tenants {
		return telemetry.TenantCounts{}
	}
	return p.m.TenantCounts(tenant)
}

// Telemetry returns the telemetry plane the Plane was configured with
// (nil when export/tracing is disabled).
func (p *Plane) Telemetry() *telemetry.T { return p.tel }

// tenantStateName renders a tenant's quarantine state for /debug/tenants.
func (p *Plane) tenantStateName(tenant int) string {
	if p.cfg.Quarantine.Threshold <= 0 {
		return "healthy"
	}
	switch p.tstate[tenant].state.Load() {
	case tsQuarantined:
		return "quarantined"
	case tsProbing:
		return "probing"
	}
	return "healthy"
}

// DebugSnapshot builds the /debug/tenants payload: per-tenant runtime
// state (quarantine, ring occupancy, counters, latency) and per-worker
// notifier internals (bank occupancy, park/wake counters, arbitration
// state via the policy.Inspect hook). In the worker sections, vector
// entries of the policy state are mapped through each bank's QIDs back
// to tenant ids.
func (p *Plane) DebugSnapshot() telemetry.DebugSnapshot {
	snap := telemetry.DebugSnapshot{
		Mode:    p.ModeString(),
		Tenants: make([]telemetry.TenantDebug, p.cfg.Tenants),
	}
	for t := 0; t < p.cfg.Tenants; t++ {
		snap.Tenants[t] = telemetry.TenantDebug{
			Tenant:     t,
			State:      p.tenantStateName(t),
			Backlog:    p.devRings[t].Len(),
			OutBacklog: p.outRings[t].Len(),
			Counts:     p.m.TenantCounts(t),
			Latency:    p.tel.TenantLatency(t).Summary(),
		}
		if p.dur != nil {
			snap.Tenants[t].DLQDepth = p.DLQDepth(t)
			snap.Tenants[t].AckedSeq = p.AckedSeq(t)
			snap.Tenants[t].DurableSeq = p.DurableSeq(t)
		}
	}
	if p.cfg.Mode == Spin {
		return snap
	}
	park := p.workerParkSeconds()
	active := int32(len(p.workers))
	if p.gov != nil {
		active = p.gov.active.Load()
	}
	for _, wk := range p.workers {
		wd := telemetry.WorkerDebug{
			Worker:      wk.id,
			Active:      int32(wk.id) < active,
			ParkSeconds: park[wk.id],
		}
		// Bank sections come only from the reporting set (worker 0 alone
		// in the shared organization — its notifier holds every bank).
		if !p.shared || wk.id == 0 {
			banks := wk.n.BankStats()
			insps := wk.n.InspectPolicy()
			wd.Banks = make([]telemetry.BankDebug, len(banks))
			for i, b := range banks {
				pd := telemetry.PolicyDebug{}
				if i < len(insps) {
					in := insps[i]
					tenants := make([]int, len(in.QIDs))
					for j, q := range in.QIDs {
						tenants[j] = wk.tenantOf[q]
					}
					pd = telemetry.PolicyDebug{
						Kind: in.Kind, Rotor: in.Rotor, Counter: in.Counter,
						Weights: in.Weights, Deficit: in.Deficit,
						Score: in.Score, Round: in.Round, QIDs: tenants,
					}
				}
				wd.Banks[i] = telemetry.BankDebug{
					Bank:        b.Bank,
					Ready:       b.Ready,
					Selects:     b.Selects,
					Activations: b.Activations,
					Steals:      b.Steals,
					Parks:       b.Parks,
					Wakes:       b.Wakes,
					BlockedNs:   b.BlockedNs,
					Policy:      pd,
				}
			}
		}
		snap.Workers = append(snap.Workers, wd)
	}
	if st, ok := p.GovernorStatus(); ok {
		snap.Governor = &telemetry.GovernorDebug{
			Mode:          st.Mode.String(),
			Wait:          st.Wait.String(),
			ActiveWorkers: st.ActiveWorkers,
			Workers:       st.Workers,
			MaxBatch:      st.MaxBatch,
			Alpha:         st.Alpha,
			Transitions:   st.Transitions,
			Reason:        st.Reason,
		}
	}
	return snap
}

// notifierWorkers returns the workers whose notifiers should be reported
// (or reconfigured): all of them normally, only the first in the
// shared-pool organization — the pool shares one notifier there, and
// repeating it per worker would multiply-count every series (or
// redundantly re-apply every SetWaitConfig).
func (p *Plane) notifierWorkers() []*worker {
	if p.shared && len(p.workers) > 1 {
		return p.workers[:1]
	}
	return p.workers
}

// writeRuntimeMetrics is the collector the plane registers on its
// telemetry plane: ring-occupancy gauges per tenant and, in Notify mode,
// per-worker QWAIT and bank activity series.
func (p *Plane) writeRuntimeMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP hyperplane_backlog Items queued device-side per tenant.\n")
	fmt.Fprintf(w, "# TYPE hyperplane_backlog gauge\n")
	for t := range p.devRings {
		fmt.Fprintf(w, "hyperplane_backlog{tenant=\"%d\"} %d\n", t, p.devRings[t].Len())
	}
	fmt.Fprintf(w, "# HELP hyperplane_out_backlog Items queued tenant-side per tenant.\n")
	fmt.Fprintf(w, "# TYPE hyperplane_out_backlog gauge\n")
	for t := range p.outRings {
		fmt.Fprintf(w, "hyperplane_out_backlog{tenant=\"%d\"} %d\n", t, p.outRings[t].Len())
	}
	fmt.Fprintf(w, "# HELP hyperplane_quarantined_tenants Tenants currently quarantined (incl. probing).\n")
	fmt.Fprintf(w, "# TYPE hyperplane_quarantined_tenants gauge\n")
	fmt.Fprintf(w, "hyperplane_quarantined_tenants %d\n", p.inQuar.Load())
	if p.dur != nil {
		ws := p.dur.log.Stats()
		fmt.Fprintf(w, "# HELP hyperplane_wal_fsyncs_total WAL group commits that reached the disk.\n")
		fmt.Fprintf(w, "# TYPE hyperplane_wal_fsyncs_total counter\n")
		fmt.Fprintf(w, "hyperplane_wal_fsyncs_total %d\n", ws.Fsyncs)
		fmt.Fprintf(w, "# HELP hyperplane_wal_bytes_total Bytes appended to WAL segments.\n")
		fmt.Fprintf(w, "# TYPE hyperplane_wal_bytes_total counter\n")
		fmt.Fprintf(w, "hyperplane_wal_bytes_total %d\n", ws.AppendedBytes)
		fmt.Fprintf(w, "# HELP hyperplane_wal_segments WAL segments currently on disk.\n")
		fmt.Fprintf(w, "# TYPE hyperplane_wal_segments gauge\n")
		fmt.Fprintf(w, "hyperplane_wal_segments %d\n", ws.Segments)
		fmt.Fprintf(w, "# HELP hyperplane_dlq_depth Items parked in the dead-letter queue per tenant.\n")
		fmt.Fprintf(w, "# TYPE hyperplane_dlq_depth gauge\n")
		for t := range p.dur.tenants {
			fmt.Fprintf(w, "hyperplane_dlq_depth{tenant=\"%d\"} %d\n", t, p.DLQDepth(t))
		}
	}
	if p.cfg.Mode == Spin {
		return
	}
	fmt.Fprintf(w, "# HELP hyperplane_worker_active Workers currently admitted to run by the governor (all of them without one).\n")
	fmt.Fprintf(w, "# TYPE hyperplane_worker_active gauge\n")
	fmt.Fprintf(w, "hyperplane_worker_active %d\n", p.ActiveWorkers())
	fmt.Fprintf(w, "# HELP hyperplane_worker_park_seconds Cumulative C1-analog residency per worker: time parked on its notifier stripe plus time halted by the governor.\n")
	fmt.Fprintf(w, "# TYPE hyperplane_worker_park_seconds counter\n")
	for i, s := range p.workerParkSeconds() {
		fmt.Fprintf(w, "hyperplane_worker_park_seconds{worker=\"%d\"} %g\n", i, s)
	}
	if st, ok := p.GovernorStatus(); ok {
		fmt.Fprintf(w, "# HELP hyperplane_governor_transitions_total Active-worker-set changes made by the governor.\n")
		fmt.Fprintf(w, "# TYPE hyperplane_governor_transitions_total counter\n")
		fmt.Fprintf(w, "hyperplane_governor_transitions_total %d\n", st.Transitions)
		fmt.Fprintf(w, "# HELP hyperplane_governor_max_batch Live autotuned per-dispatch batch cap.\n")
		fmt.Fprintf(w, "# TYPE hyperplane_governor_max_batch gauge\n")
		fmt.Fprintf(w, "hyperplane_governor_max_batch %d\n", st.MaxBatch)
		fmt.Fprintf(w, "# HELP hyperplane_governor_alpha Live autotuned EWMA smoothing factor.\n")
		fmt.Fprintf(w, "# TYPE hyperplane_governor_alpha gauge\n")
		fmt.Fprintf(w, "hyperplane_governor_alpha %g\n", st.Alpha)
	}
	fmt.Fprintf(w, "# HELP hyperplane_qwait_notifies_total Doorbell notifications per worker notifier.\n")
	fmt.Fprintf(w, "# TYPE hyperplane_qwait_notifies_total counter\n")
	for _, wk := range p.notifierWorkers() {
		s := wk.n.Stats()
		fmt.Fprintf(w, "hyperplane_qwait_notifies_total{worker=\"%d\"} %d\n", wk.id, s.Notifies)
	}
	fmt.Fprintf(w, "# HELP hyperplane_bank_ready Enabled ready queues per notifier bank.\n")
	fmt.Fprintf(w, "# TYPE hyperplane_bank_ready gauge\n")
	type bankSeries struct {
		name, help string
		get        func(hyperplane.BankStats) int64
	}
	counters := []bankSeries{
		{"hyperplane_bank_selects_total", "Selections served per bank.",
			func(b hyperplane.BankStats) int64 { return b.Selects }},
		{"hyperplane_bank_activations_total", "Activations inserted per bank.",
			func(b hyperplane.BankStats) int64 { return b.Activations }},
		{"hyperplane_bank_steals_total", "QIDs stolen from each bank by sibling consumers.",
			func(b hyperplane.BankStats) int64 { return b.Steals }},
		{"hyperplane_bank_parks_total", "Waiters parked per bank stripe.",
			func(b hyperplane.BankStats) int64 { return b.Parks }},
		{"hyperplane_bank_wakes_total", "Wakeups delivered per bank stripe.",
			func(b hyperplane.BankStats) int64 { return b.Wakes }},
	}
	wks := p.notifierWorkers()
	all := make([][]hyperplane.BankStats, len(wks))
	for i, wk := range wks {
		all[i] = wk.n.BankStats()
		for _, b := range all[i] {
			fmt.Fprintf(w, "hyperplane_bank_ready{worker=\"%d\",bank=\"%d\"} %d\n", wk.id, b.Bank, b.Ready)
		}
	}
	for _, cs := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n", cs.name, cs.help)
		fmt.Fprintf(w, "# TYPE %s counter\n", cs.name)
		for i, wk := range wks {
			for _, b := range all[i] {
				fmt.Fprintf(w, "%s{worker=\"%d\",bank=\"%d\"} %d\n", cs.name, wk.id, b.Bank, cs.get(b))
			}
		}
	}
}

// Quarantined reports whether the tenant is currently quarantined
// (including the probing window).
func (p *Plane) Quarantined(tenant int) bool {
	if tenant < 0 || tenant >= p.cfg.Tenants {
		return false
	}
	return p.tstate[tenant].state.Load() != tsHealthy
}

// Tenants returns the configured tenant count.
func (p *Plane) Tenants() int { return p.cfg.Tenants }

// Mode returns the configured notification mode.
func (p *Plane) Mode() Mode { return p.cfg.Mode }

// Package dataplane assembles the full software-data-plane architecture of
// the HyperPlane paper's Fig. 2 as a real, runnable Go runtime:
//
//	device-side queues  ->  data plane workers  ->  tenant-side queues
//	      (1a/1b)               (2a..2d)                  (3)
//
// An emulated I/O device (or any producer) calls Ingress to place work on a
// tenant's device-side queue and ring its doorbell. Data plane workers are
// notified through the QWAIT runtime (hyperplane.Notifier) — or, for
// baseline comparison, by spin-polling — run the transport Handler, deliver
// the result to the tenant-side queue, and ring the tenant's doorbell.
// Tenants consume with Egress/EgressWait.
//
// The package is the software analogue of the simulated planes in
// internal/sdp, usable for real measurements on real hardware (see
// BenchmarkPlaneNotify/BenchmarkPlaneSpin).
package dataplane

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hyperplane"
	"hyperplane/internal/queue"
)

// Handler performs transport processing on one work item (step 2b). It
// returns the payload to deliver tenant-side; a nil result drops the item.
type Handler func(tenant int, payload []byte) ([]byte, error)

// Mode selects the notification mechanism of the data plane workers.
type Mode uint8

// Notification modes.
const (
	// Notify blocks workers in QWAIT (hyperplane.Notifier) — the
	// HyperPlane model.
	Notify Mode = iota
	// Spin makes workers iterate over their queues at full tilt — the
	// software-only baseline.
	Spin
)

func (m Mode) String() string {
	if m == Spin {
		return "spin"
	}
	return "notify"
}

// Config describes a Plane.
type Config struct {
	// Tenants is the number of tenant queue pairs (device-side RX +
	// tenant-side delivery).
	Tenants int
	// Workers is the number of data plane goroutines; tenant queues are
	// partitioned across workers (scale-out, matching the SPSC rings).
	Workers int
	// RingCapacity sizes each ring (power of two; default 1024).
	RingCapacity int
	// Mode selects QWAIT-style notification (default) or spin-polling.
	Mode Mode
	// Policy is the per-worker service policy in Notify mode.
	Policy hyperplane.Policy
	// Handler is the transport-processing function; nil defaults to echo.
	Handler Handler
}

// Stats is a snapshot of plane activity.
type Stats struct {
	Ingressed int64 // items accepted by Ingress
	Processed int64 // items run through the Handler
	Delivered int64 // items placed on tenant-side queues
	Errors    int64 // handler errors (item dropped)
	Backlog   int   // items currently queued device-side
}

// Plane is a running software data plane.
type Plane struct {
	cfg Config

	devRings []*queue.Ring[[]byte] // per tenant, device side
	outRings []*queue.Ring[[]byte] // per tenant, tenant side

	workers []*worker

	tenantNotifiers []*hyperplane.Notifier // one per tenant (delivery side)
	tenantQIDs      []hyperplane.QID

	ingressed atomic.Int64
	processed atomic.Int64
	delivered atomic.Int64
	errors    atomic.Int64

	started atomic.Bool
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// worker owns a partition of tenant device-side queues. QID<->tenant
// routing uses dense slices: the worker registers its tenants in order,
// so its notifier QIDs are 0..len(tenants)-1 and both lookups are a
// bounds check and a load on the hot path.
type worker struct {
	id          int
	tenants     []int // tenant ids served by this worker
	n           *hyperplane.Notifier
	tenantOf    []int            // notifier QID -> tenant id
	qidByTenant []hyperplane.QID // tenant id -> notifier QID (-1 = not ours)
	stop        atomic.Bool
}

// ErrNotStarted is returned by Stop before Start.
var ErrNotStarted = errors.New("dataplane: plane not started")

// New builds a Plane; call Start to launch the workers.
func New(cfg Config) (*Plane, error) {
	if cfg.Tenants < 1 {
		return nil, fmt.Errorf("dataplane: Tenants must be positive, got %d", cfg.Tenants)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Workers > cfg.Tenants {
		cfg.Workers = cfg.Tenants
	}
	if cfg.RingCapacity == 0 {
		cfg.RingCapacity = 1024
	}
	if cfg.Handler == nil {
		cfg.Handler = func(_ int, payload []byte) ([]byte, error) { return payload, nil }
	}
	p := &Plane{cfg: cfg}

	for t := 0; t < cfg.Tenants; t++ {
		dr, err := queue.NewRing[[]byte](cfg.RingCapacity)
		if err != nil {
			return nil, err
		}
		or, err := queue.NewRing[[]byte](cfg.RingCapacity)
		if err != nil {
			return nil, err
		}
		p.devRings = append(p.devRings, dr)
		p.outRings = append(p.outRings, or)

		// Tenant-side notification: each tenant gets its own single-queue
		// notifier so EgressWait blocks exactly like a tenant core would
		// on its doorbell.
		tn, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{MaxQueues: 1})
		if err != nil {
			return nil, err
		}
		qid, err := tn.Register(or.Doorbell())
		if err != nil {
			return nil, err
		}
		p.tenantNotifiers = append(p.tenantNotifiers, tn)
		p.tenantQIDs = append(p.tenantQIDs, qid)
	}

	// Partition tenants across workers round-robin; in Notify mode each
	// worker gets its own notifier over its partition.
	for w := 0; w < cfg.Workers; w++ {
		wk := &worker{id: w}
		for t := w; t < cfg.Tenants; t += cfg.Workers {
			wk.tenants = append(wk.tenants, t)
		}
		if cfg.Mode == Notify {
			n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{
				MaxQueues: len(wk.tenants),
				Policy:    cfg.Policy,
			})
			if err != nil {
				return nil, err
			}
			wk.tenantOf = make([]int, len(wk.tenants))
			wk.qidByTenant = make([]hyperplane.QID, cfg.Tenants)
			for t := range wk.qidByTenant {
				wk.qidByTenant[t] = -1
			}
			for _, t := range wk.tenants {
				qid, err := n.Register(p.devRings[t].Doorbell())
				if err != nil {
					return nil, err
				}
				wk.tenantOf[qid] = t
				wk.qidByTenant[t] = qid
			}
			wk.n = n
		}
		p.workers = append(p.workers, wk)
	}
	return p, nil
}

// Start launches the data plane workers.
func (p *Plane) Start() {
	if !p.started.CompareAndSwap(false, true) {
		return
	}
	for _, wk := range p.workers {
		p.wg.Add(1)
		go func(wk *worker) {
			defer p.wg.Done()
			if p.cfg.Mode == Notify {
				p.runNotify(wk)
			} else {
				p.runSpin(wk)
			}
		}(wk)
	}
}

// Stop drains in-flight work, terminates the workers, and closes tenant
// notifiers. It is idempotent.
func (p *Plane) Stop() error {
	if !p.started.Load() {
		return ErrNotStarted
	}
	if !p.stopped.CompareAndSwap(false, true) {
		return nil
	}
	for _, wk := range p.workers {
		wk.stop.Store(true)
		if wk.n != nil {
			wk.n.Close() // wake blocked QWAITs
		}
	}
	p.wg.Wait()
	for _, tn := range p.tenantNotifiers {
		tn.Close()
	}
	return nil
}

// Ingress places a work item on a tenant's device-side queue (the emulated
// NIC's DMA + doorbell). It returns false on backpressure (ring full) or
// invalid tenant.
func (p *Plane) Ingress(tenant int, payload []byte) bool {
	if tenant < 0 || tenant >= p.cfg.Tenants || p.stopped.Load() {
		return false
	}
	if !p.devRings[tenant].Push(payload) {
		return false
	}
	p.ingressed.Add(1)
	if p.cfg.Mode == Notify {
		w := p.workers[tenant%p.cfg.Workers]
		w.n.Notify(w.qidByTenant[tenant])
	}
	return true
}

// IngressItem pairs a tenant with a payload for batch ingress.
type IngressItem struct {
	Tenant  int
	Payload []byte
}

// IngressBatch places a burst of work items in one call (the emulated
// device's batched DMA + coalesced doorbells): payloads are pushed first
// and each worker's doorbells are rung once via NotifyBatch, amortizing
// waiter wakeups across the burst. It returns the number of items
// accepted; items for invalid tenants or full rings are dropped, like
// Ingress.
func (p *Plane) IngressBatch(items []IngressItem) int {
	if p.stopped.Load() {
		return 0
	}
	var perWorker [][]hyperplane.QID
	if p.cfg.Mode == Notify {
		perWorker = make([][]hyperplane.QID, len(p.workers))
	}
	accepted := 0
	for _, it := range items {
		if it.Tenant < 0 || it.Tenant >= p.cfg.Tenants {
			continue
		}
		if !p.devRings[it.Tenant].Push(it.Payload) {
			continue
		}
		accepted++
		if perWorker != nil {
			w := it.Tenant % p.cfg.Workers
			perWorker[w] = append(perWorker[w], p.workers[w].qidByTenant[it.Tenant])
		}
	}
	if accepted > 0 {
		p.ingressed.Add(int64(accepted))
	}
	for w, qids := range perWorker {
		if len(qids) > 0 {
			p.workers[w].n.NotifyBatch(qids)
		}
	}
	return accepted
}

// Egress pops one processed item from a tenant's delivery queue without
// blocking.
func (p *Plane) Egress(tenant int) ([]byte, bool) {
	if tenant < 0 || tenant >= p.cfg.Tenants {
		return nil, false
	}
	v, ok := p.outRings[tenant].Pop()
	if ok {
		p.tenantNotifiers[tenant].Reconsider(p.tenantQIDs[tenant])
	}
	return v, ok
}

// EgressWait blocks until an item is available for the tenant (the tenant
// core's own QWAIT) or the plane stops.
func (p *Plane) EgressWait(tenant int) ([]byte, bool) {
	if tenant < 0 || tenant >= p.cfg.Tenants {
		return nil, false
	}
	tn := p.tenantNotifiers[tenant]
	qid := p.tenantQIDs[tenant]
	for {
		if _, ok := tn.Wait(); !ok {
			// Closed: drain any remaining item without blocking.
			return p.outRings[tenant].Pop()
		}
		v, ok := p.outRings[tenant].Pop()
		tn.Consume(qid)
		if ok {
			return v, true
		}
	}
}

// runNotify is the QWAIT worker loop (Algorithm 1 of the paper), batched:
// WaitBatch drains several ready queues per wakeup and Consume collapses
// the Verify/Reconsider pair to one ready-set acquisition per item.
func (p *Plane) runNotify(wk *worker) {
	// Strict priority must re-evaluate the lowest ready QID after every
	// item, so it gets a batch of one (see Notifier.WaitBatch docs).
	size := 32
	if p.cfg.Policy == hyperplane.StrictPriority {
		size = 1
	}
	batch := make([]hyperplane.QID, size)
	for {
		c := wk.n.WaitBatch(batch)
		if c == 0 {
			return // notifier closed by Stop
		}
		for _, qid := range batch[:c] {
			tenant := wk.tenantOf[qid]
			payload, got := p.devRings[tenant].Pop()
			wk.n.Consume(qid)
			if got {
				p.handle(tenant, payload)
			}
		}
	}
}

// runSpin is the baseline loop: iterate over owned tenants at full tilt.
func (p *Plane) runSpin(wk *worker) {
	idle := 0
	for !wk.stop.Load() {
		found := false
		for _, tenant := range wk.tenants {
			payload, got := p.devRings[tenant].Pop()
			if !got {
				continue
			}
			found = true
			p.handle(tenant, payload)
		}
		if !found {
			idle++
			if idle > 64 {
				// Stay honest to "spinning" while not starving the other
				// goroutines of this test process.
				runtime.Gosched()
			}
		} else {
			idle = 0
		}
	}
}

// handle runs transport processing and delivers to the tenant side.
func (p *Plane) handle(tenant int, payload []byte) {
	p.processed.Add(1)
	out, err := p.cfg.Handler(tenant, payload)
	if err != nil {
		p.errors.Add(1)
		return
	}
	if out == nil {
		return
	}
	for !p.outRings[tenant].Push(out) {
		if p.stopped.Load() {
			return
		}
		runtime.Gosched() // tenant-side backpressure
	}
	p.delivered.Add(1)
	p.tenantNotifiers[tenant].Notify(p.tenantQIDs[tenant])
}

// Stats returns a snapshot of plane counters.
func (p *Plane) Stats() Stats {
	backlog := 0
	for _, r := range p.devRings {
		backlog += r.Len()
	}
	return Stats{
		Ingressed: p.ingressed.Load(),
		Processed: p.processed.Load(),
		Delivered: p.delivered.Load(),
		Errors:    p.errors.Load(),
		Backlog:   backlog,
	}
}

// Tenants returns the configured tenant count.
func (p *Plane) Tenants() int { return p.cfg.Tenants }

// Mode returns the configured notification mode.
func (p *Plane) Mode() Mode { return p.cfg.Mode }

package dataplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestBatchHandlerEndToEnd: a BatchHandler transforms whole drained
// batches in place and the results arrive tenant-side in FIFO order, in
// both modes.
func TestBatchHandlerEndToEnd(t *testing.T) {
	for _, mode := range []Mode{Notify, Spin} {
		t.Run(mode.String(), func(t *testing.T) {
			var batchCalls, batchItems int64
			var mu sync.Mutex
			p, err := New(Config{
				Tenants:  2,
				Mode:     mode,
				MaxBatch: 8,
				Handler: func(_ int, payload []byte) ([]byte, error) {
					return append(payload, 'x'), nil
				},
				BatchHandler: func(_ int, payloads [][]byte) error {
					mu.Lock()
					batchCalls++
					batchItems += int64(len(payloads))
					mu.Unlock()
					for i := range payloads {
						payloads[i] = append(payloads[i], 'x')
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			p.Start()
			defer p.Stop()

			const perTenant = 200
			for i := 0; i < perTenant; i++ {
				for tn := 0; tn < 2; tn++ {
					for !p.Ingress(tn, []byte(fmt.Sprintf("%d-%d", tn, i))) {
						time.Sleep(time.Microsecond)
					}
				}
			}
			waitFor(t, 5*time.Second, func() bool {
				return p.Stats().Delivered == 2*perTenant
			})
			for tn := 0; tn < 2; tn++ {
				for i := 0; i < perTenant; i++ {
					v, ok := p.EgressWait(tn)
					if !ok {
						t.Fatalf("tenant %d: egress %d failed", tn, i)
					}
					want := fmt.Sprintf("%d-%dx", tn, i)
					if string(v) != want {
						t.Fatalf("tenant %d item %d = %q, want %q", tn, i, v, want)
					}
				}
			}
			st := p.Stats()
			if st.Processed != 2*perTenant || st.Errors != 0 || st.Panics != 0 {
				t.Errorf("stats = %+v", st)
			}
			mu.Lock()
			calls, items := batchCalls, batchItems
			mu.Unlock()
			// Batches of one take the per-item path; everything else must
			// have gone through the BatchHandler in fewer calls than items.
			if calls > 0 && items <= calls {
				t.Errorf("batch handler saw %d items in %d calls — no batching", items, calls)
			}
		})
	}
}

// TestBatchPanicIsolation: a poisoned item inside a batch kills only
// itself. The batch attempt panics, the plane replays item by item, the
// per-item handler panics once on the poisoned item (counted, dropped),
// and every other item in the batch is delivered.
func TestBatchPanicIsolation(t *testing.T) {
	poison := []byte("poison")
	handler := func(_ int, payload []byte) ([]byte, error) {
		if string(payload) == string(poison) {
			panic("poisoned item")
		}
		return payload, nil
	}
	p, err := New(Config{
		Tenants:  1,
		MaxBatch: 16,
		Handler:  handler,
		BatchHandler: func(tenant int, payloads [][]byte) error {
			for i, pl := range payloads {
				out, err := handler(tenant, pl) // panics on the poisoned item
				if err != nil {
					return err
				}
				payloads[i] = out
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	// One burst so the whole thing lands in a single drained batch.
	items := make([]IngressItem, 10)
	for i := range items {
		items[i] = IngressItem{Tenant: 0, Payload: []byte{byte('0' + i)}}
	}
	items[4].Payload = poison
	if got := p.IngressBatch(items); got != len(items) {
		t.Fatalf("IngressBatch = %d", got)
	}
	waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered == 9 })
	st := p.Stats()
	if st.Panics != 1 {
		t.Errorf("Panics = %d, want 1 (batch attempt must not be counted)", st.Panics)
	}
	if st.Processed != 10 || st.Delivered != 9 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
	// The nine survivors arrive in order, without the poisoned item.
	want := []byte("012356789")
	for i := 0; i < 9; i++ {
		v, ok := p.Egress(0)
		if !ok || v[0] != want[i] {
			t.Fatalf("egress %d = %q, %v (want %q)", i, v, ok, want[i])
		}
	}
}

// TestBatchErrorReplay: a BatchHandler error rejects the attempt and the
// per-item replay charges the error to exactly the failing item.
func TestBatchErrorReplay(t *testing.T) {
	bad := errors.New("bad item")
	handler := func(_ int, payload []byte) ([]byte, error) {
		if payload[0] == 0xff {
			return nil, bad
		}
		return payload, nil
	}
	p, err := New(Config{
		Tenants:  1,
		MaxBatch: 16,
		Handler:  handler,
		BatchHandler: func(tenant int, payloads [][]byte) error {
			for i, pl := range payloads {
				out, err := handler(tenant, pl)
				if err != nil {
					return err
				}
				payloads[i] = out
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	items := make([]IngressItem, 8)
	for i := range items {
		items[i] = IngressItem{Tenant: 0, Payload: []byte{byte(i)}}
	}
	items[3].Payload = []byte{0xff}
	p.IngressBatch(items)
	waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered == 7 })
	st := p.Stats()
	if st.Errors != 1 || st.Processed != 8 || st.Panics != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestSharedIngressConcurrentProducers: with SharedIngress, many
// goroutines Ingress the same tenant concurrently; every accepted item is
// delivered and each producer's items stay in its submission order.
func TestSharedIngressConcurrentProducers(t *testing.T) {
	p, err := New(Config{
		Tenants:       1,
		SharedIngress: true,
		RingCapacity:  256,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	const (
		producers = 4
		perProd   = 3000
	)
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for seq := 0; seq < perProd; seq++ {
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint32(buf, uint32(pr))
				binary.LittleEndian.PutUint32(buf[4:], uint32(seq))
				for !p.Ingress(0, buf) {
					time.Sleep(time.Microsecond)
				}
			}
		}(pr)
	}

	nextSeq := make([]uint32, producers)
	dst := make([][]byte, 64)
	total := 0
	for total < producers*perProd {
		n := p.EgressBatch(0, dst)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for _, v := range dst[:n] {
			pr := binary.LittleEndian.Uint32(v)
			seq := binary.LittleEndian.Uint32(v[4:])
			if seq != nextSeq[pr] {
				t.Fatalf("producer %d: got seq %d, want %d", pr, seq, nextSeq[pr])
			}
			nextSeq[pr]++
		}
		total += n
	}
	wg.Wait()
	st := p.Stats()
	if st.Delivered != producers*perProd || st.Backlog != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestEgressBatchOrder: EgressBatch drains the delivery queue in FIFO
// order with one call per burst.
func TestEgressBatchOrder(t *testing.T) {
	p, err := New(Config{Tenants: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	const total = 40
	for i := 0; i < total; i++ {
		p.Ingress(0, []byte{byte(i)})
	}
	waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered == total })
	dst := make([][]byte, 16)
	got := 0
	for got < total {
		n := p.EgressBatch(0, dst)
		for i := 0; i < n; i++ {
			if dst[i][0] != byte(got+i) {
				t.Fatalf("out of order at %d: %d", got+i, dst[i][0])
			}
		}
		got += n
	}
	if n := p.EgressBatch(0, dst); n != 0 {
		t.Fatalf("EgressBatch on empty = %d", n)
	}
}

// TestMaxBatchOneBaseline: MaxBatch=1 pins the per-item dispatch path —
// the benchmarked baseline — and still satisfies end-to-end delivery.
func TestMaxBatchOneBaseline(t *testing.T) {
	for _, mode := range []Mode{Notify, Spin} {
		t.Run(mode.String(), func(t *testing.T) {
			p, err := New(Config{Tenants: 2, Mode: mode, MaxBatch: 1})
			if err != nil {
				t.Fatal(err)
			}
			p.Start()
			defer p.Stop()
			const total = 100
			for i := 0; i < total; i++ {
				for !p.Ingress(i%2, []byte{byte(i)}) {
					time.Sleep(time.Microsecond)
				}
			}
			waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered == total })
		})
	}
}

// TestDispatchZeroAllocs pins the zero-allocation claim for the whole
// dispatch loop: steady-state ingress -> batched drain -> BatchHandler ->
// bulk delivery -> batched egress must not allocate per item. Spin mode
// keeps the worker from parking (waiter channels are the one legitimate
// allocation on the blocking path).
func TestDispatchZeroAllocs(t *testing.T) {
	const burst = 16
	p, err := New(Config{
		Tenants:  1,
		Mode:     Spin,
		MaxBatch: burst,
		BatchHandler: func(_ int, payloads [][]byte) error {
			return nil // deliver as-is
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	payload := []byte{1}
	items := make([]IngressItem, burst)
	for i := range items {
		items[i] = IngressItem{Tenant: 0, Payload: payload}
	}
	dst := make([][]byte, burst)
	drive := func() {
		for p.IngressBatch(items) != burst {
			runtime.Gosched()
		}
		for got := 0; got < burst; {
			n := p.EgressBatch(0, dst[:burst-got])
			if n == 0 {
				runtime.Gosched()
				continue
			}
			got += n
		}
	}
	drive() // warm up ring and notifier state
	avg := testing.AllocsPerRun(50, drive)
	// One burst is 16 items; anything >= 1 allocation per burst means a
	// per-item (or per-batch) allocation crept into the hot path.
	if avg >= 1 {
		t.Errorf("allocs per %d-item burst = %v, want 0", burst, avg)
	}
}

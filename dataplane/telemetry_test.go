package dataplane

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hyperplane/internal/telemetry"
)

// TestPlaneTelemetry runs a plane with a telemetry plane attached and
// checks the full export path: sampled notification latency lands in
// the per-tenant histograms and trace ring, the counter grids feed both
// Stats() and /metrics, and DebugSnapshot reports quarantine state and
// arbitration internals.
func TestPlaneTelemetry(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{
		Tenants:     4,
		Workers:     2,
		SampleEvery: 1, // trace every notification so counts are deterministic targets
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Tenants:   4,
		Workers:   2,
		Mode:      Notify,
		Telemetry: tel,
		Quarantine: QuarantineConfig{
			Threshold: 2,
			Backoff:   time.Hour, // keep the quarantined tenant down for the assertion
		},
		Handler: func(tenant int, payload []byte) ([]byte, error) {
			if tenant == 3 {
				return nil, errors.New("always fails")
			}
			return payload, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	const perTenant = 200
	for i := 0; i < perTenant; i++ {
		for tn := 0; tn < 4; tn++ {
			for !p.Ingress(tn, []byte{byte(i)}) {
				time.Sleep(10 * time.Microsecond)
			}
			if tn != 3 {
				if _, ok := p.EgressWait(tn); !ok {
					t.Fatalf("EgressWait(%d) failed", tn)
				}
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = p.Drain(ctx) // tenant 3 is quarantined with backlog; just settle the others

	// Sampled spans closed at dispatch land in tenant histograms.
	lat := tel.TenantLatency(0)
	if lat.Count == 0 {
		t.Error("tenant 0 recorded no notification spans")
	}
	if s := lat.Summary(); s.P50 <= 0 || s.P50 > s.P999 {
		t.Errorf("implausible latency summary: %+v", s)
	}
	if tel.Trace().Len() == 0 {
		t.Error("trace ring is empty")
	}

	// The counter grids back Stats() and per-tenant counts agree.
	st := p.Stats()
	if st.Processed == 0 || st.Delivered == 0 {
		t.Fatalf("no work recorded: %+v", st)
	}
	tc := p.TenantStats(0)
	if tc.Processed != perTenant || tc.Delivered != perTenant {
		t.Errorf("tenant 0 counts = %+v, want %d processed+delivered", tc, perTenant)
	}
	if errs := p.TenantStats(3).Errors; errs == 0 {
		t.Error("failing tenant shows no errors")
	}

	// DebugSnapshot: quarantine state, backlog, and arbitration internals.
	snap := p.DebugSnapshot()
	if len(snap.Tenants) != 4 {
		t.Fatalf("debug tenants = %d", len(snap.Tenants))
	}
	if snap.Tenants[3].State != "quarantined" {
		t.Errorf("tenant 3 state = %q, want quarantined", snap.Tenants[3].State)
	}
	if snap.Tenants[3].Backlog == 0 {
		t.Error("quarantined tenant shows no backlog")
	}
	if snap.Tenants[0].Counts.Processed != perTenant {
		t.Errorf("tenant 0 debug counts = %+v", snap.Tenants[0].Counts)
	}
	if len(snap.Workers) != 2 {
		t.Fatalf("debug workers = %d", len(snap.Workers))
	}
	for _, wd := range snap.Workers {
		if len(wd.Banks) == 0 {
			t.Errorf("worker %d has no bank debug", wd.Worker)
		}
		for _, b := range wd.Banks {
			if b.Policy.Kind == "" {
				t.Errorf("worker %d bank %d missing policy inspection", wd.Worker, b.Bank)
			}
			if b.Activations == 0 {
				t.Errorf("worker %d bank %d saw no activations", wd.Worker, b.Bank)
			}
		}
	}

	// /metrics carries the per-tenant latency summary, the counter grids,
	// and the plane's collector series.
	var sb strings.Builder
	tel.WriteMetrics(&sb)
	text := sb.String()
	for _, want := range []string{
		`hyperplane_notify_latency_seconds{tenant="0",quantile="0.99"}`,
		`hyperplane_processed_total{tenant="0"} 200`,
		`hyperplane_handler_errors_total{tenant="3"}`,
		`hyperplane_backlog{tenant="3"}`,
		`hyperplane_quarantined_tenants 1`,
		`hyperplane_bank_selects_total{worker="0",bank="0"}`,
		`hyperplane_qwait_notifies_total{worker="1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPlaneTelemetryDisabled pins the zero-cost contract: without a
// telemetry plane the notify path must not allocate, and Stats() still
// works off the internal grids.
func TestPlaneTelemetryDisabled(t *testing.T) {
	p, err := New(Config{Tenants: 1, Workers: 1, Mode: Notify})
	if err != nil {
		t.Fatal(err)
	}
	if p.Telemetry() != nil {
		t.Fatal("telemetry unexpectedly attached")
	}
	p.Start()
	defer p.Stop()
	if !p.Ingress(0, []byte{1}) {
		t.Fatal("ingress failed")
	}
	if _, ok := p.EgressWait(0); !ok {
		t.Fatal("egress failed")
	}
	if s := p.Stats(); s.Processed != 1 || s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

package dataplane

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// hookRecorder collects every OnDeliver invocation so tests can assert
// the exactly-once deliver-or-retire contract per admitted item.
type hookRecorder struct {
	mu       sync.Mutex
	events   []hookEvent
	notified chan struct{}
}

type hookEvent struct {
	tenant  int
	payload []byte // copied; nil means retired
	tag     uint64
}

func newHookRecorder() *hookRecorder {
	return &hookRecorder{notified: make(chan struct{}, 1024)}
}

func (h *hookRecorder) hook(tenant int, payload []byte, tag uint64) {
	h.mu.Lock()
	var cp []byte
	if payload != nil {
		cp = append([]byte(nil), payload...)
	}
	h.events = append(h.events, hookEvent{tenant: tenant, payload: cp, tag: tag})
	h.mu.Unlock()
	select {
	case h.notified <- struct{}{}:
	default:
	}
}

// waitEvents blocks until the recorder holds at least n events.
func (h *hookRecorder) waitEvents(t *testing.T, n int) []hookEvent {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		h.mu.Lock()
		if len(h.events) >= n {
			out := append([]hookEvent(nil), h.events...)
			h.mu.Unlock()
			return out
		}
		h.mu.Unlock()
		select {
		case <-h.notified:
		case <-deadline:
			h.mu.Lock()
			got := len(h.events)
			h.mu.Unlock()
			t.Fatalf("timed out waiting for %d hook events, have %d", n, got)
		}
	}
}

// TestOnDeliverHookTags proves the egress hook receives every admitted
// item exactly once with its producer tag intact, across both the
// single-item and bulk-run IngressBatch paths.
func TestOnDeliverHookTags(t *testing.T) {
	rec := newHookRecorder()
	p, err := New(Config{Tenants: 2, Workers: 2, OnDeliver: rec.hook})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	const n = 200
	items := make([]IngressItem, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, IngressItem{
			Tenant:  i % 2,
			Payload: []byte(fmt.Sprintf("msg-%d", i)),
			Tag:     uint64(i + 1),
		})
	}
	if got := p.IngressBatch(items); got != n {
		t.Fatalf("accepted %d/%d", got, n)
	}
	events := rec.waitEvents(t, n)
	seen := make(map[uint64][]byte, n)
	for _, ev := range events {
		if _, dup := seen[ev.tag]; dup {
			t.Fatalf("tag %d delivered twice", ev.tag)
		}
		seen[ev.tag] = ev.payload
	}
	for i := 0; i < n; i++ {
		tag := uint64(i + 1)
		want := []byte(fmt.Sprintf("msg-%d", i))
		if !bytes.Equal(seen[tag], want) {
			t.Fatalf("tag %d payload = %q, want %q", tag, seen[tag], want)
		}
	}
	if st := p.Stats(); st.Delivered != n {
		t.Errorf("Delivered = %d, want %d", st.Delivered, n)
	}
}

// TestOnDeliverRetire proves items that complete without delivery —
// handler error, handler panic, handler-consumed (nil output) — still
// reach the hook exactly once, as a retirement (nil payload) carrying
// the original tag, so hook owners can release per-item resources.
func TestOnDeliverRetire(t *testing.T) {
	rec := newHookRecorder()
	p, err := New(Config{
		Tenants: 1,
		Workers: 1,
		Handler: func(_ int, payload []byte) ([]byte, error) {
			switch string(payload) {
			case "err":
				return nil, errors.New("boom")
			case "panic":
				panic("boom")
			case "consume":
				return nil, nil
			}
			return payload, nil
		},
		OnDeliver: rec.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	items := []IngressItem{
		{Tenant: 0, Payload: []byte("err"), Tag: 1},
		{Tenant: 0, Payload: []byte("panic"), Tag: 2},
		{Tenant: 0, Payload: []byte("consume"), Tag: 3},
		{Tenant: 0, Payload: []byte("ok"), Tag: 4},
	}
	if got := p.IngressBatch(items); got != len(items) {
		t.Fatalf("accepted %d/%d", got, len(items))
	}
	events := rec.waitEvents(t, len(items))
	byTag := make(map[uint64]hookEvent, len(events))
	for _, ev := range events {
		if _, dup := byTag[ev.tag]; dup {
			t.Fatalf("tag %d reached the hook twice", ev.tag)
		}
		byTag[ev.tag] = ev
	}
	for _, tag := range []uint64{1, 2, 3} {
		ev, ok := byTag[tag]
		if !ok {
			t.Fatalf("tag %d never retired", tag)
		}
		if ev.payload != nil {
			t.Fatalf("tag %d retired with payload %q, want nil", tag, ev.payload)
		}
	}
	if ev := byTag[4]; !bytes.Equal(ev.payload, []byte("ok")) {
		t.Fatalf("tag 4 payload = %q, want %q", ev.payload, "ok")
	}
}

// TestOnDeliverBatchHandlerTags proves the BatchHandler fast path keeps
// tags attached through the payload-view round trip, for both delivered
// and batch-consumed items.
func TestOnDeliverBatchHandlerTags(t *testing.T) {
	rec := newHookRecorder()
	p, err := New(Config{
		Tenants: 1,
		Workers: 1,
		Mode:    Spin,
		BatchHandler: func(_ int, payloads [][]byte) error {
			for i, pl := range payloads {
				if bytes.Equal(pl, []byte("consume")) {
					payloads[i] = nil
				}
			}
			return nil
		},
		OnDeliver: rec.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	const n = 64
	items := make([]IngressItem, 0, n)
	for i := 0; i < n; i++ {
		pl := []byte(fmt.Sprintf("batch-%d", i))
		if i%4 == 0 {
			pl = []byte("consume")
		}
		items = append(items, IngressItem{Tenant: 0, Payload: pl, Tag: uint64(i + 1)})
	}
	if got := p.IngressBatch(items); got != n {
		t.Fatalf("accepted %d/%d", got, n)
	}
	events := rec.waitEvents(t, n)
	byTag := make(map[uint64]hookEvent, n)
	for _, ev := range events {
		if _, dup := byTag[ev.tag]; dup {
			t.Fatalf("tag %d reached the hook twice", ev.tag)
		}
		byTag[ev.tag] = ev
	}
	for i := 0; i < n; i++ {
		ev, ok := byTag[uint64(i+1)]
		if !ok {
			t.Fatalf("tag %d missing", i+1)
		}
		if i%4 == 0 {
			if ev.payload != nil {
				t.Fatalf("consumed tag %d carried payload %q", i+1, ev.payload)
			}
		} else if want := fmt.Sprintf("batch-%d", i); string(ev.payload) != want {
			t.Fatalf("tag %d payload = %q, want %q", i+1, ev.payload, want)
		}
	}
}

// TestOnDeliverDurableDLQCopies proves the durable tier's DLQ owns a
// private copy of a failed payload in hook mode: the producer's buffer
// is recycled after retire, so a live reference would be corrupted.
func TestOnDeliverDurableDLQCopies(t *testing.T) {
	rec := newHookRecorder()
	p, err := New(Config{
		Tenants: 1,
		Workers: 1,
		Handler: func(_ int, _ []byte) ([]byte, error) { return nil, errors.New("always fails") },
		Durable: DurableConfig{Dir: t.TempDir()},
		OnDeliver: func(tenant int, payload []byte, tag uint64) {
			rec.hook(tenant, payload, tag)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	buf := []byte("poison-payload")
	if got := p.IngressBatch([]IngressItem{{Tenant: 0, Payload: buf, Tag: 7}}); got != 1 {
		t.Fatalf("accepted %d, want 1", got)
	}
	rec.waitEvents(t, 1) // retire observed: the item is dead-lettered
	// Simulate slab recycling: scribble over the producer buffer.
	for i := range buf {
		buf[i] = 'X'
	}
	entries := p.DrainDLQ(0, 10)
	if len(entries) != 1 {
		t.Fatalf("DLQ has %d entries, want 1", len(entries))
	}
	if string(entries[0].Payload) != "poison-payload" {
		t.Fatalf("DLQ payload = %q, want the pre-recycle copy", entries[0].Payload)
	}
}

package dataplane

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hyperplane"
	"hyperplane/internal/governor"
)

func TestGovernorConfigValidation(t *testing.T) {
	base := Config{Tenants: 4, Workers: 2, Mode: Notify}
	bad := []GovernorConfig{
		{Enable: true, MinWorkers: 3}, // > Workers
		{SpinBudget: -1},              // checked even when disabled (Hybrid uses it)
		{Enable: true, Interval: -time.Second},
		{Enable: true, Mode: governor.Mode(9)},
	}
	for _, gc := range bad {
		cfg := base
		cfg.Governor = gc
		if _, err := New(cfg); err == nil {
			t.Errorf("GovernorConfig %+v accepted", gc)
		}
	}
	// A governed spin plane is a contradiction: halting a spin worker
	// strands its partitions.
	spin := base
	spin.Mode = Spin
	spin.Governor = GovernorConfig{Enable: true}
	if _, err := New(spin); err == nil {
		t.Error("governor accepted on a Spin plane")
	}
	cfg := base
	cfg.Mode = Hybrid
	cfg.Governor = GovernorConfig{Enable: true}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ActiveWorkers(); got != 2 {
		t.Errorf("fresh plane ActiveWorkers = %d, want 2", got)
	}
}

// governedPlane builds and starts a governed Notify plane with a fast
// control loop, registering cleanup.
func governedPlane(t *testing.T, cfg Config) *Plane {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(func() { _ = p.Stop() })
	return p
}

// waitActive polls ActiveWorkers until pred holds or the deadline lapses.
func waitActive(t *testing.T, p *Plane, d time.Duration, pred func(int) bool, what string) int {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		a := p.ActiveWorkers()
		if pred(a) {
			return a
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: ActiveWorkers stuck at %d", what, a)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// TestGovernorShrinksIdleAndGrowsOnBurst is the elastic round trip: an
// idle plane releases workers down to the floor, a backlog burst grows
// the set back, and every item still flows.
func TestGovernorShrinksIdleAndGrowsOnBurst(t *testing.T) {
	const tenants, workers = 8, 4
	slow := func(_ int, payload []byte) ([]byte, error) {
		time.Sleep(50 * time.Microsecond)
		return payload, nil
	}
	p := governedPlane(t, Config{
		Tenants:  tenants,
		Workers:  workers,
		Mode:     Notify,
		Handler:  slow,
		MaxBatch: 8,
		Governor: GovernorConfig{
			Enable:      true,
			Interval:    200 * time.Microsecond,
			ShrinkAfter: 2,
		},
	})

	// Idle: the set must shrink to the floor.
	low := waitActive(t, p, 5*time.Second, func(a int) bool { return a == 1 },
		"idle shrink")

	// Burst: flood enough backlog past GrowBacklog (4*8=32) per active
	// worker to trigger the doubling response while the slow handler keeps
	// the backlog visible.
	for i := 0; i < 2000; i++ {
		for !p.Ingress(i%tenants, []byte{byte(i)}) {
			time.Sleep(10 * time.Microsecond)
		}
	}
	grown := waitActive(t, p, 5*time.Second, func(a int) bool { return a > low },
		"burst grow")
	if grown <= low {
		t.Fatalf("burst did not grow the set: %d -> %d", low, grown)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("Drain after burst: %v", err)
	}
	if st := p.Stats(); st.Processed != 2000 {
		t.Fatalf("Processed = %d, want 2000", st.Processed)
	}
	if st, ok := p.GovernorStatus(); !ok || st.Transitions == 0 {
		t.Errorf("GovernorStatus = %+v, %v; want transitions > 0", st, ok)
	}
}

// TestGovernorDoesNotStrandTenants is the liveness backstop: with the
// active set shrunk to one worker (Efficient mode, no stealing), a
// trickle to EVERY tenant — including those whose home worker is halted —
// must drain completely.
func TestGovernorDoesNotStrandTenants(t *testing.T) {
	const tenants, workers = 12, 4
	p := governedPlane(t, Config{
		Tenants: tenants,
		Workers: workers,
		Mode:    Notify,
		Governor: GovernorConfig{
			Enable:      true,
			Mode:        governor.Efficient,
			Interval:    200 * time.Microsecond,
			ShrinkAfter: 2,
		},
	})
	waitActive(t, p, 5*time.Second, func(a int) bool { return a == 1 },
		"efficient shrink")

	const perTenant = 50
	for k := 0; k < perTenant; k++ {
		for tn := 0; tn < tenants; tn++ {
			if !p.Ingress(tn, []byte{byte(k)}) {
				t.Fatalf("ingress rejected tenant %d item %d", tn, k)
			}
		}
		// Paced: stay under the grow threshold so the set stays shrunk and
		// the surviving worker alone must reach every bank.
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("stranded tenants: %v (stats %+v, active %d)", err, p.Stats(), p.ActiveWorkers())
	}
	for tn := 0; tn < tenants; tn++ {
		got := 0
		dst := make([][]byte, perTenant)
		for got < perTenant {
			n := p.EgressBatch(tn, dst)
			if n == 0 {
				t.Fatalf("tenant %d delivered %d of %d", tn, got, perTenant)
			}
			got += n
		}
	}
}

// TestSetGovernorModeLive switches operating points on a running plane:
// the wait strategy follows the mode and LowLatency re-pins the full set.
func TestSetGovernorModeLive(t *testing.T) {
	p := governedPlane(t, Config{
		Tenants: 4,
		Workers: 4,
		Mode:    Notify,
		Governor: GovernorConfig{
			Enable:      true,
			Interval:    200 * time.Microsecond,
			ShrinkAfter: 2,
		},
	})
	if wc := p.WaitConfig(); wc.Strategy != hyperplane.WaitHybrid {
		t.Fatalf("Balanced governor wait = %v, want hybrid", wc)
	}
	waitActive(t, p, 5*time.Second, func(a int) bool { return a == 1 }, "idle shrink")

	if err := p.SetGovernorMode(governor.LowLatency); err != nil {
		t.Fatal(err)
	}
	if wc := p.WaitConfig(); wc.Strategy != hyperplane.WaitSpin {
		t.Fatalf("LowLatency wait = %v, want spin", wc)
	}
	waitActive(t, p, 5*time.Second, func(a int) bool { return a == 4 }, "low-latency re-pin")

	if err := p.SetGovernorMode(governor.Efficient); err != nil {
		t.Fatal(err)
	}
	if wc := p.WaitConfig(); wc.Strategy != hyperplane.WaitPark {
		t.Fatalf("Efficient wait = %v, want park", wc)
	}
	waitActive(t, p, 5*time.Second, func(a int) bool { return a == 1 }, "efficient shrink")

	if err := p.SetGovernorMode(governor.Mode(9)); err == nil {
		t.Error("unknown mode accepted")
	}
	if got := p.ModeString(); got != "notify/efficient/park" {
		t.Errorf("ModeString = %q", got)
	}

	// Work must still flow in the shrunk Efficient state.
	for i := 0; i < 100; i++ {
		if !p.Ingress(i%4, []byte{1}) {
			t.Fatalf("ingress rejected at %d", i)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestGovernorAPIDisabled: the governor surface degrades cleanly on an
// ungoverned plane.
func TestGovernorAPIDisabled(t *testing.T) {
	p, err := New(Config{Tenants: 2, Workers: 2, Mode: Notify})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	if got := p.ActiveWorkers(); got != 2 {
		t.Errorf("ActiveWorkers = %d, want 2", got)
	}
	if _, ok := p.GovernorStatus(); ok {
		t.Error("GovernorStatus ok on ungoverned plane")
	}
	if err := p.SetGovernorMode(governor.Balanced); err == nil {
		t.Error("SetGovernorMode should fail without a governor")
	}
	if got := p.ModeString(); got != "notify" {
		t.Errorf("ModeString = %q, want notify", got)
	}
	// Wait strategy is still switchable without a governor.
	if err := p.SetWaitConfig(hyperplane.WaitConfig{Strategy: hyperplane.WaitHybrid, SpinBudget: 64}); err != nil {
		t.Fatal(err)
	}
	if wc := p.WaitConfig(); wc.Strategy != hyperplane.WaitHybrid || wc.SpinBudget != 64 {
		t.Errorf("live WaitConfig = %+v", wc)
	}
}

// TestHybridModeEndToEnd: Mode Hybrid is Notify organization plus the
// spin-then-park strategy; items round-trip and the mode renders
// correctly everywhere.
func TestHybridModeEndToEnd(t *testing.T) {
	p, err := New(Config{Tenants: 4, Workers: 2, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	if wc := p.WaitConfig(); wc.Strategy != hyperplane.WaitHybrid {
		t.Fatalf("Hybrid plane wait = %v", wc)
	}
	if got := p.Mode().String(); got != "hybrid" {
		t.Errorf("Mode.String() = %q", got)
	}
	for i := 0; i < 200; i++ {
		tn := i % 4
		if !p.Ingress(tn, []byte(fmt.Sprintf("m%d", i))) {
			t.Fatalf("ingress rejected at %d", i)
		}
	}
	got := 0
	for tn := 0; tn < 4; tn++ {
		for k := 0; k < 50; k++ {
			if _, ok := p.EgressWait(tn); !ok {
				t.Fatalf("EgressWait closed early (tenant %d)", tn)
			}
			got++
		}
	}
	if got != 200 {
		t.Fatalf("delivered %d of 200", got)
	}
	if m, err := ParseMode("hybrid"); err != nil || m != Hybrid {
		t.Errorf("ParseMode(hybrid) = %v, %v", m, err)
	}
}

// TestGovernorDebugSnapshot: the export surfaces carry the governor
// state — mode string, governor section, per-worker active flags.
func TestGovernorDebugSnapshot(t *testing.T) {
	p := governedPlane(t, Config{
		Tenants: 4,
		Workers: 2,
		Mode:    Notify,
		Governor: GovernorConfig{
			Enable:      true,
			Interval:    200 * time.Microsecond,
			ShrinkAfter: 2,
		},
	})
	waitActive(t, p, 5*time.Second, func(a int) bool { return a == 1 }, "idle shrink")
	snap := p.DebugSnapshot()
	if snap.Mode != "notify/balanced/hybrid(4096)" {
		t.Errorf("snapshot mode = %q", snap.Mode)
	}
	if snap.Governor == nil {
		t.Fatal("snapshot missing governor section")
	}
	if snap.Governor.ActiveWorkers != 1 || snap.Governor.Workers != 2 {
		t.Errorf("governor section = %+v", snap.Governor)
	}
	if len(snap.Workers) != 2 {
		t.Fatalf("want 2 worker rows, got %d", len(snap.Workers))
	}
	if !snap.Workers[0].Active || snap.Workers[1].Active {
		t.Errorf("active flags = %v/%v, want true/false",
			snap.Workers[0].Active, snap.Workers[1].Active)
	}
	// The halted worker accrues park residency. The shrink target is
	// published before the surplus worker reaches its halt gate (or its
	// notifier park), so poll: residency starts counting only once the
	// worker actually blocks somewhere.
	parkDeadline := time.Now().Add(5 * time.Second)
	for {
		snap = p.DebugSnapshot()
		if snap.Workers[1].ParkSeconds > 0 {
			break
		}
		if time.Now().After(parkDeadline) {
			t.Errorf("halted worker ParkSeconds = %g, want > 0", snap.Workers[1].ParkSeconds)
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Shared pool: bank sections live on worker 0 only.
	if len(snap.Workers[0].Banks) == 0 || len(snap.Workers[1].Banks) != 0 {
		t.Errorf("bank placement: worker0=%d worker1=%d banks",
			len(snap.Workers[0].Banks), len(snap.Workers[1].Banks))
	}
}

package dataplane

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// Property: for any mode / tenant count / worker count / item volume, the
// plane conserves work — everything ingressed is processed exactly once
// and delivered exactly once (echo handler), with per-tenant FIFO order.
func TestPlaneConservationProperty(t *testing.T) {
	f := func(modeRaw, tenantsRaw, workersRaw uint8, volumeRaw uint16) bool {
		mode := Notify
		if modeRaw%2 == 1 {
			mode = Spin
		}
		tenants := int(tenantsRaw%6) + 1
		workers := int(workersRaw%4) + 1
		perTenant := int(volumeRaw%100) + 1

		p, err := New(Config{
			Tenants:      tenants,
			Workers:      workers,
			Mode:         mode,
			RingCapacity: 256,
		})
		if err != nil {
			return false
		}
		p.Start()
		defer p.Stop()

		var wg sync.WaitGroup
		var pushed atomic.Int64
		for tn := 0; tn < tenants; tn++ {
			wg.Add(1)
			go func(tn int) {
				defer wg.Done()
				for i := 0; i < perTenant; i++ {
					v := []byte(fmt.Sprintf("%d:%d", tn, i))
					for !p.Ingress(tn, v) {
						time.Sleep(time.Microsecond)
					}
					pushed.Add(1)
				}
			}(tn)
		}

		okAll := atomic.Bool{}
		okAll.Store(true)
		for tn := 0; tn < tenants; tn++ {
			wg.Add(1)
			go func(tn int) {
				defer wg.Done()
				for i := 0; i < perTenant; i++ {
					out, ok := p.EgressWait(tn)
					if !ok {
						okAll.Store(false)
						return
					}
					if string(out) != fmt.Sprintf("%d:%d", tn, i) {
						okAll.Store(false) // per-tenant FIFO violated
						return
					}
				}
			}(tn)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			return false
		}
		st := p.Stats()
		want := int64(tenants * perTenant)
		return okAll.Load() && pushed.Load() == want &&
			st.Processed == want && st.Delivered == want && st.Errors == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Elastic worker control plane: the dataplane half of the governor. The
// pure control law lives in internal/governor; this file owns everything
// that touches plane state — sampling the telemetry grids, halting and
// resuming worker goroutines, and applying the batch/alpha autotunes to
// the live notifiers.
//
// A "halted" worker is the runtime analog of a C1-parked core in the
// paper's power model (Figs. 11–12): it blocks on its resume channel at
// the top of its dispatch loop, consuming no CPU, while the pool's shared
// banked notifier lets the remaining active workers drain its tenants
// (WaitHomeBatch's full-sweep fallback, or stealing when enabled). Waking
// it back up is one non-blocking channel send — the software version of
// the paper's ~0.5 µs C1 exit.
package dataplane

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane"
	"hyperplane/internal/governor"
)

// GovernorConfig configures the elastic worker control plane
// (Config.Governor). The zero value disables it.
type GovernorConfig struct {
	// Enable turns the governor on. Requires a notification mode (Notify
	// or Hybrid): the governor halts workers, and only the shared banked
	// notifier lets the rest of the pool drain a halted worker's tenants.
	Enable bool
	// Mode is the initial latency-vs-power operating point (see
	// governor.Mode); switchable live via SetGovernorMode. It also picks
	// the pool's wait strategy: LowLatency spins, Balanced spins then
	// parks, Efficient parks eagerly.
	Mode governor.Mode
	// Interval is the control-loop sampling period (default 2ms).
	Interval time.Duration
	// MinWorkers is the floor of the active set (default 1). The ceiling
	// is always Config.Workers.
	MinWorkers int
	// SpinBudget is the hybrid strategy's pre-park poll budget (default
	// hyperplane.DefaultSpinBudget). Also honored by Mode Hybrid planes
	// that do not enable the governor.
	SpinBudget int
	// BatchHorizon, GrowBacklog and ShrinkAfter tune the control law; zero
	// picks the governor package defaults.
	BatchHorizon time.Duration
	GrowBacklog  int
	ShrinkAfter  int
	// DisableBatchTune pins the live batch cap at Config.MaxBatch instead
	// of following the arrival rate.
	DisableBatchTune bool
	// DisableAlphaTune leaves the EWMA policy's alpha alone instead of
	// stiffening it under bursty arrivals. Moot for non-EWMA policies.
	DisableAlphaTune bool
}

// validate checks the governor block against the resolved plane config
// (called from New after Workers/MaxBatch defaults are applied).
func (g GovernorConfig) validate(cfg Config) error {
	if g.SpinBudget < 0 {
		return fmt.Errorf("dataplane: Governor.SpinBudget must be >= 0, got %d", g.SpinBudget)
	}
	if !g.Enable {
		return nil
	}
	if cfg.Mode == Spin {
		return errors.New("dataplane: Governor requires a notification mode (Notify or Hybrid): spin workers cannot be halted without stranding their partitions")
	}
	if g.Mode > governor.Efficient {
		return fmt.Errorf("dataplane: unknown governor mode %d", g.Mode)
	}
	if g.Interval < 0 {
		return fmt.Errorf("dataplane: Governor.Interval must be >= 0, got %v", g.Interval)
	}
	if g.MinWorkers < 0 || g.MinWorkers > cfg.Workers {
		return fmt.Errorf("dataplane: Governor.MinWorkers must be in [0, Workers=%d], got %d", cfg.Workers, g.MinWorkers)
	}
	return nil
}

// govRuntime is the per-plane governor state. The controller is guarded
// by mu (the govern loop ticks it, SetGovernorMode and GovernorStatus
// poke it from outside); everything the worker hot path reads is an
// atomic.
type govRuntime struct {
	cfg      GovernorConfig
	interval time.Duration

	mu  sync.Mutex
	ctl *governor.Controller

	// active is the live active-worker target: workers with id >= active
	// halt at the gate. transitions counts every change of the target.
	active      atomic.Int32
	transitions atomic.Int64

	// resume[i] wakes worker i out of its halt gate (cap 1: a send is a
	// level, not an edge, so grow never blocks the govern loop).
	resume []chan struct{}
	// haltNs[i] accumulates worker i's completed halt residency;
	// haltedAt[i] holds the UnixNano a live halt began (0 = not halted),
	// so exports can include the in-progress halt.
	haltNs   []atomic.Int64
	haltedAt []atomic.Int64

	// lastAlpha is the last alpha pushed to the notifiers; govern-loop
	// private.
	lastAlpha float64
}

// newGovRuntime builds the runtime and its controller; cfg has all plane
// defaults resolved.
func newGovRuntime(cfg Config) (*govRuntime, error) {
	gc := cfg.Governor
	interval := gc.Interval
	if interval == 0 {
		interval = 2 * time.Millisecond
	}
	ctl, err := governor.New(governor.Config{
		Mode:         gc.Mode,
		MinWorkers:   gc.MinWorkers,
		MaxWorkers:   cfg.Workers,
		MaxBatch:     cfg.MaxBatch,
		BatchHorizon: gc.BatchHorizon,
		GrowBacklog:  gc.GrowBacklog,
		ShrinkAfter:  gc.ShrinkAfter,
	})
	if err != nil {
		return nil, err
	}
	g := &govRuntime{
		cfg:      gc,
		interval: interval,
		ctl:      ctl,
		resume:   make([]chan struct{}, cfg.Workers),
		haltNs:   make([]atomic.Int64, cfg.Workers),
		haltedAt: make([]atomic.Int64, cfg.Workers),
	}
	for i := range g.resume {
		g.resume[i] = make(chan struct{}, 1)
	}
	g.active.Store(int32(cfg.Workers))
	return g, nil
}

// waitStrategyFor maps a governor mode to the pool's wait strategy: the
// C0-dwell policy that matches the mode's latency-vs-power point.
func waitStrategyFor(m governor.Mode) hyperplane.WaitStrategy {
	switch m {
	case governor.LowLatency:
		return hyperplane.WaitSpin
	case governor.Efficient:
		return hyperplane.WaitPark
	}
	return hyperplane.WaitHybrid
}

// initialWaitConfig resolves the wait strategy the plane's notifiers
// start with: the governor's mode when it runs, hybrid for Mode Hybrid,
// park (the classic QWAIT discipline) otherwise.
func (p *Plane) initialWaitConfig() hyperplane.WaitConfig {
	wc := hyperplane.WaitConfig{Strategy: hyperplane.WaitPark, SpinBudget: p.cfg.Governor.SpinBudget}
	switch {
	case p.cfg.Governor.Enable:
		wc.Strategy = waitStrategyFor(p.cfg.Governor.Mode)
	case p.cfg.Mode == Hybrid:
		wc.Strategy = hyperplane.WaitHybrid
	}
	return wc
}

// gate halts the worker while its id is outside the active set. Called at
// the top of every dispatch-loop iteration, before the worker commits to
// a wait — so a freshly-shrunk worker finishes its in-flight batch and
// then drops out cleanly, with no pending QIDs to strand.
func (g *govRuntime) gate(p *Plane, wk *worker) {
	if int32(wk.id) < g.active.Load() || p.stopped.Load() {
		return
	}
	t0 := time.Now()
	g.haltedAt[wk.id].Store(t0.UnixNano())
	for int32(wk.id) >= g.active.Load() && !p.stopped.Load() {
		select {
		case <-g.resume[wk.id]:
		case <-p.stopCh:
		}
	}
	g.haltedAt[wk.id].Store(0)
	g.haltNs[wk.id].Add(time.Since(t0).Nanoseconds())
}

// setActive publishes a new active-worker target and wakes every worker
// the change re-admits. Shrinks need no signal: surplus workers observe
// the target at their next gate check (a worker blocked in QWAIT is
// already parked, which is exactly where the shrink wants it).
func (g *govRuntime) setActive(target int32) {
	old := g.active.Swap(target)
	if target == old {
		return
	}
	g.transitions.Add(1)
	for i := old; i < target; i++ {
		select {
		case g.resume[i] <- struct{}{}:
		default:
		}
	}
}

// governLoop is the plane's control loop: sample, tick the controller,
// apply. One goroutine per plane, started by Start, stopped by Stop.
func (p *Plane) governLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.gov.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case now := <-t.C:
			p.governTick(now)
		}
	}
}

// governTick folds one observation window into the controller and applies
// its decision to the live plane.
func (p *Plane) governTick(now time.Time) {
	g := p.gov
	backlog := 0
	for _, r := range p.devRings {
		backlog += r.Len()
	}
	s := governor.Sample{
		Ingressed: p.m.Ingressed.Total(),
		Processed: p.m.Processed.Total(),
		Backlog:   backlog,
		Active:    int(g.active.Load()),
	}
	g.mu.Lock()
	d := g.ctl.Tick(now, s)
	g.mu.Unlock()

	g.setActive(int32(d.Active))
	if !g.cfg.DisableBatchTune {
		if nb := int32(d.MaxBatch); nb != p.maxBatch.Load() {
			p.maxBatch.Store(nb)
		}
	}
	if !g.cfg.DisableAlphaTune && p.cfg.Policy.Kind == hyperplane.EWMAAdaptive.Kind &&
		math.Abs(d.Alpha-g.lastAlpha) > 1e-3 {
		g.lastAlpha = d.Alpha
		for _, wk := range p.notifierWorkers() {
			wk.n.SetEWMAAlpha(d.Alpha)
		}
	}
}

// ActiveWorkers returns the number of workers currently admitted to run.
// Without a governor every worker is always active.
func (p *Plane) ActiveWorkers() int {
	if p.gov == nil {
		return len(p.workers)
	}
	return int(p.gov.active.Load())
}

// SetGovernorMode switches the governor's operating point live: the
// control law changes immediately, the pool's wait strategy follows the
// new mode, and the active set adjusts on the next control tick. Returns
// an error when the plane runs without a governor.
func (p *Plane) SetGovernorMode(m governor.Mode) error {
	if p.gov == nil {
		return errors.New("dataplane: governor not enabled")
	}
	if m > governor.Efficient {
		return fmt.Errorf("dataplane: unknown governor mode %d", m)
	}
	p.gov.mu.Lock()
	p.gov.ctl.SetMode(m)
	p.gov.mu.Unlock()
	return p.SetWaitConfig(hyperplane.WaitConfig{
		Strategy:   waitStrategyFor(m),
		SpinBudget: p.cfg.Governor.SpinBudget,
	})
}

// SetWaitConfig switches the wait discipline of every worker notifier
// live (no restart): parked waiters adopt it on their next wakeup,
// spinning waiters within one recheck period. Spin-mode planes have no
// notifiers to configure and reject the call.
func (p *Plane) SetWaitConfig(wc hyperplane.WaitConfig) error {
	if p.cfg.Mode == Spin {
		return errors.New("dataplane: spin planes have no wait strategy")
	}
	for _, wk := range p.notifierWorkers() {
		if err := wk.n.SetWaitConfig(wc); err != nil {
			return err
		}
	}
	return nil
}

// WaitConfig returns the live wait discipline (zero value on spin
// planes).
func (p *Plane) WaitConfig() hyperplane.WaitConfig {
	if p.cfg.Mode == Spin {
		return hyperplane.WaitConfig{}
	}
	return p.workers[0].n.WaitConfig()
}

// GovernorStatus is a snapshot of the governor's live state.
type GovernorStatus struct {
	Mode          governor.Mode         // current operating point
	Wait          hyperplane.WaitConfig // live wait strategy
	ActiveWorkers int                   // workers currently admitted
	Workers       int                   // configured ceiling
	MaxBatch      int                   // live tuned batch cap
	Alpha         float64               // live tuned EWMA alpha
	ArrivalRate   float64               // smoothed arrival estimate, items/s
	Transitions   int64                 // active-set changes so far
	Reason        string                // last transition's trigger
}

// GovernorStatus reports the governor's live state; ok is false when the
// plane runs without one.
func (p *Plane) GovernorStatus() (GovernorStatus, bool) {
	g := p.gov
	if g == nil {
		return GovernorStatus{}, false
	}
	g.mu.Lock()
	mode := g.ctl.Mode()
	d := g.ctl.Decision()
	rate := g.ctl.ArrivalRate()
	g.mu.Unlock()
	return GovernorStatus{
		Mode:          mode,
		Wait:          p.WaitConfig(),
		ActiveWorkers: int(g.active.Load()),
		Workers:       len(p.workers),
		MaxBatch:      int(p.maxBatch.Load()),
		Alpha:         d.Alpha,
		ArrivalRate:   rate,
		Transitions:   g.transitions.Load(),
		Reason:        d.Reason,
	}, true
}

// ModeString renders the plane's live operating point for humans and
// labels: the notification mode alone ("notify", "spin", "hybrid"), or,
// under a governor, mode/governor-mode/wait — e.g.
// "notify/balanced/hybrid(4096)".
func (p *Plane) ModeString() string {
	s := p.cfg.Mode.String()
	if st, ok := p.GovernorStatus(); ok {
		s += "/" + st.Mode.String() + "/" + st.Wait.String()
	}
	return s
}

// workerParkSeconds returns each worker's cumulative C1-analog residency
// in seconds: wall time blocked on its notifier stripe plus wall time
// halted by the governor (including a live in-progress halt). In the
// shared-pool organization stripe residency is attributed by home stripe,
// so workers sharing a stripe (Workers > MaxShards) see the stripe's
// aggregate.
func (p *Plane) workerParkSeconds() []float64 {
	out := make([]float64, len(p.workers))
	if p.cfg.Mode == Spin {
		return out
	}
	if p.shared {
		banks := p.workers[0].n.BankStats()
		for i, wk := range p.workers {
			if wk.home < len(banks) {
				out[i] = float64(banks[wk.home].BlockedNs)
			}
		}
	} else {
		for i, wk := range p.workers {
			var ns int64
			for _, b := range wk.n.BankStats() {
				ns += b.BlockedNs
			}
			out[i] = float64(ns)
		}
	}
	if p.gov != nil {
		now := time.Now().UnixNano()
		for i := range out {
			ns := p.gov.haltNs[i].Load()
			if at := p.gov.haltedAt[i].Load(); at != 0 && now > at {
				ns += now - at
			}
			out[i] += float64(ns)
		}
	}
	for i := range out {
		out[i] /= 1e9
	}
	return out
}

package dataplane

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperplane/internal/fault"
)

// chaosPlaneConfig is the shared plane shape for the isolation experiment:
// quarantine reacts fast, and DropNewest keeps stalled consumers from
// head-of-line-blocking their worker.
func chaosPlaneConfig(handler Handler) Config {
	return Config{
		Tenants:  16,
		Workers:  2,
		Mode:     Notify,
		Delivery: DropNewest,
		Handler:  handler,
		Quarantine: QuarantineConfig{
			Threshold:  3,
			Backoff:    5 * time.Millisecond,
			BackoffMax: 50 * time.Millisecond,
		},
		RestartBackoff: time.Millisecond,
	}
}

// runChaosWindow floods every tenant for the window and returns items
// delivered to healthy tenants' consumers (tenants not in the injector's
// fault plan; all of them when inj == nil). Faulty tenants with stalled
// consumer gates do not drain their rings — DropNewest absorbs that.
func runChaosWindow(t *testing.T, p *Plane, inj *fault.Injector, healthy []int, window time.Duration) int64 {
	t.Helper()
	var stop atomic.Bool
	var healthyDelivered atomic.Int64
	isHealthy := make(map[int]bool, len(healthy))
	for _, tn := range healthy {
		isHealthy[tn] = true
	}

	var wg sync.WaitGroup
	for tn := 0; tn < p.Tenants(); tn++ {
		wg.Add(2)
		go func(tn int) { // producer: flood
			defer wg.Done()
			payload := []byte{byte(tn)}
			for !stop.Load() {
				if !p.Ingress(tn, payload) {
					time.Sleep(5 * time.Microsecond)
				}
			}
		}(tn)
		go func(tn int) { // consumer
			defer wg.Done()
			for {
				if inj != nil && inj.Stalled(tn) {
					if stop.Load() {
						return
					}
					time.Sleep(100 * time.Microsecond)
					continue
				}
				out, ok := p.Egress(tn)
				if !ok {
					if stop.Load() {
						return
					}
					time.Sleep(5 * time.Microsecond)
					continue
				}
				_ = out
				if isHealthy[tn] {
					healthyDelivered.Add(1)
				}
			}
		}(tn)
	}

	time.Sleep(window)
	start := healthyDelivered.Load()
	time.Sleep(window) // measured half, after warmup
	measured := healthyDelivered.Load() - start
	stop.Store(true)
	wg.Wait()
	return measured
}

// TestChaosFaultyTenantIsolation is the acceptance experiment: with 25% of
// tenants faulty (handlers that panic on every item, plus stalled
// consumers), healthy tenants' notify-mode throughput stays within 10% of
// the all-healthy baseline, no worker goroutine is permanently lost, and
// the quarantined tenants recover once the fault clears.
func TestChaosFaultyTenantIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos experiment")
	}
	const window = 250 * time.Millisecond
	// 4 of 16 tenants faulty: two panic on every item, two stall their
	// consumers (healthy handlers, dead delivery rings).
	panicky := []int{0, 1}
	stalled := []int{2, 3}
	healthy := make([]int, 0, 12)
	for tn := 4; tn < 16; tn++ {
		healthy = append(healthy, tn)
	}

	// Two back-to-back 250ms throughput windows on a shared CI host are
	// noisy — the isolation property is about sustained interference,
	// not one window's scheduling luck — so the baseline/faulty pair is
	// re-measured up to three times and one clean comparison suffices.
	// The functional assertions below (quarantine, worker liveness,
	// recovery) always run against the last faulty plane and stay
	// strict.
	const attempts = 3
	var (
		p                *Plane
		inj, inj2        *fault.Injector
		baseline, faulty int64
	)
	for a := 1; a <= attempts; a++ {
		if p != nil {
			p.Stop()
		}
		// Baseline: all tenants healthy; measure the same 12 tenants.
		base, err := New(chaosPlaneConfig(nil))
		if err != nil {
			t.Fatal(err)
		}
		base.Start()
		baseline = runChaosWindow(t, base, nil, healthy, window)
		base.Stop()
		if baseline == 0 {
			t.Fatal("baseline delivered nothing")
		}

		// Faulty run: one injector panics tenants 0-1's handler on every
		// item, the other only stalls tenants 2-3's consumer gates.
		inj2, err = fault.New(fault.Config{
			Seed: 1, Tenants: 16, Faulty: panicky, PanicEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		inj, err = fault.New(fault.Config{
			Seed: 1, Tenants: 16, Faulty: stalled, StallConsumers: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Surface the fault plan seeds up front so a -race failure in CI
		// logs is reproducible without rerunning under a debugger.
		t.Logf("fault seeds: panic injector=%d stall injector=%d", inj2.Seed(), inj.Seed())
		p, err = New(chaosPlaneConfig(Handler(inj2.Wrap(func(tenant int, payload []byte) ([]byte, error) {
			return payload, nil
		}))))
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		faulty = runChaosWindow(t, p, inj, healthy, window)

		t.Logf("healthy throughput: baseline=%d faulty=%d (%.1f%%)",
			baseline, faulty, 100*float64(faulty)/float64(baseline))
		if float64(faulty) >= 0.9*float64(baseline) {
			break
		}
		if a == attempts {
			t.Errorf("healthy tenants degraded beyond 10%% in all %d attempts: baseline=%d faulty=%d",
				attempts, baseline, faulty)
		} else {
			t.Logf("attempt %d/%d below the 90%% bar; re-measuring", a, attempts)
		}
	}
	defer p.Stop()

	st := p.Stats()
	if st.Panics == 0 {
		t.Error("no panics recorded despite PanicEvery=1 tenants")
	}
	if st.Quarantined == 0 {
		t.Error("panicking tenants were never quarantined")
	}

	// No worker goroutine was permanently lost: every healthy tenant (the
	// set spans both worker partitions) still flows end to end right now.
	for tn := 4; tn < 16; tn++ {
		probeTenant(t, p, tn)
	}

	// Faults clear: quarantined tenants must recover and deliver again.
	inj2.Clear()
	inj.Clear()
	waitFor(t, 10*time.Second, func() bool { return p.Stats().Quarantined == 0 })
	for _, tn := range []int{0, 1, 2, 3} {
		probeTenant(t, p, tn)
	}
}

// probeTenant proves the tenant's worker is serving it now: drain the
// tenant-side ring, ingress a probe, and wait for any egress item. Any
// item that arrives after the drain was delivered by the worker after the
// probe was sent (either the probe itself or in-ring backlog it is still
// flushing — under DropNewest the probe can legitimately be evicted by
// that backlog, which proves liveness just as well).
func probeTenant(t *testing.T, p *Plane, tn int) {
	t.Helper()
	for {
		if _, ok := p.Egress(tn); !ok {
			break
		}
	}
	p.Ingress(tn, []byte{0xee}) // full ring is fine: backlog will deliver
	waitFor(t, 10*time.Second, func() bool {
		_, ok := p.Egress(tn)
		return ok
	})
}

// TestChaosIngressDuringStop hammers Ingress and IngressBatch from many
// goroutines racing Stop: no panic, no notify-after-close, and once Stop
// returns both deterministically reject.
func TestChaosIngressDuringStop(t *testing.T) {
	for round := 0; round < 20; round++ {
		p, err := New(Config{Tenants: 8, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()

		// Each goroutine owns two tenants (ingress is single-producer per
		// tenant), and hammers Ingress + IngressBatch against Stop.
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				payload := []byte{byte(g)}
				batch := []IngressItem{{Tenant: g, Payload: payload}, {Tenant: g + 4, Payload: payload}}
				for {
					if p.stopped.Load() {
						return
					}
					p.Ingress(g, payload)
					p.IngressBatch(batch)
				}
			}(g)
		}
		close(start)
		time.Sleep(time.Duration(round%4) * 100 * time.Microsecond)
		if err := p.Stop(); err != nil {
			t.Fatal(err)
		}
		// Deterministic after Stop returns.
		if p.Ingress(0, []byte("late")) {
			t.Fatal("Ingress accepted after Stop returned")
		}
		if n := p.IngressBatch([]IngressItem{{Tenant: 0, Payload: []byte("late")}}); n != 0 {
			t.Fatalf("IngressBatch accepted %d after Stop returned", n)
		}
		wg.Wait()
	}
}

// TestChaosWorkerCrashStorm restarts workers repeatedly under load; the
// supervisor must keep the plane serving every partition with no goroutine
// permanently lost.
func TestChaosWorkerCrashStorm(t *testing.T) {
	p, err := New(Config{
		Tenants:        8,
		Workers:        2,
		RestartBackoff: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for tn := 0; tn < 8; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			payload := []byte{byte(tn)}
			for !stop.Load() {
				p.Ingress(tn, payload)
				p.Egress(tn)
			}
		}(tn)
	}
	// Keep triggering until five restarts actually happened: a Store on a
	// still-pending crashNext coalesces with it, so a fixed trigger count
	// can under-deliver when the scheduler stalls the workers.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; p.Stats().Restarts < 5 && time.Now().Before(deadline); i++ {
		p.workers[i%2].crashNext.Store(true)
		time.Sleep(2 * time.Millisecond)
	}
	waitFor(t, 10*time.Second, func() bool { return p.Stats().Restarts >= 5 })
	stop.Store(true)
	wg.Wait()

	// After the storm every tenant still flows end to end.
	for tn := 0; tn < 8; tn++ {
		probeTenant(t, p, tn)
	}
}

package dataplane

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"hyperplane/internal/fault"
)

// durableConfig is the base plane shape for durable-tier tests.
func durableConfig(dir string, mut func(*Config)) Config {
	cfg := Config{
		Tenants: 2,
		Workers: 1,
		Durable: DurableConfig{Dir: dir, FsyncEvery: time.Millisecond},
	}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

func startDurable(t *testing.T, cfg Config) *Plane {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	return p
}

func drainT(t *testing.T, p *Plane) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func seqPayload(id uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, id)
	return b
}

// TestDurableCleanShutdownReplaysNothing: fully consumed work is acked
// and persisted at Stop, so a restart replays zero records.
func TestDurableCleanShutdownReplaysNothing(t *testing.T) {
	dir := t.TempDir()
	p := startDurable(t, durableConfig(dir, nil))
	for i := uint64(1); i <= 50; i++ {
		if st := p.IngressID(0, i, seqPayload(i)); st != IngressAccepted {
			t.Fatalf("IngressID(%d) = %v", i, st)
		}
	}
	drainT(t, p)
	got := 0
	for {
		if _, ok := p.Egress(0); !ok {
			break
		}
		got++
	}
	if got != 50 {
		t.Fatalf("egressed %d of 50", got)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	p2 := startDurable(t, durableConfig(dir, nil))
	defer p2.Stop()
	drainT(t, p2)
	if st := p2.Stats(); st.Replayed != 0 {
		t.Fatalf("clean shutdown replayed %d records", st.Replayed)
	}
	if _, ok := p2.Egress(0); ok {
		t.Fatal("item appeared after clean shutdown + restart")
	}
	// And a producer retry of a consumed id is still deduplicated — the
	// window survives restart via the WAL scan.
	if st := p2.IngressID(0, 7, seqPayload(7)); st != IngressDuplicate {
		t.Fatalf("retry of consumed id: got %v, want duplicate", st)
	}
}

// TestDurableRecoveryReplaysUnacked: unconsumed items replay through
// normal ingress after a restart; consumed items do not.
func TestDurableRecoveryReplaysUnacked(t *testing.T) {
	dir := t.TempDir()
	p := startDurable(t, durableConfig(dir, nil))
	for i := uint64(1); i <= 10; i++ {
		if st := p.IngressID(0, i, seqPayload(i)); st != IngressAccepted {
			t.Fatalf("IngressID(%d) = %v", i, st)
		}
	}
	drainT(t, p)
	// Consume the first 4; WALSync persists their ack watermark even if
	// Stop were unclean.
	for i := 0; i < 4; i++ {
		if _, ok := p.Egress(0); !ok {
			t.Fatalf("egress %d failed", i)
		}
	}
	if err := p.WALSync(); err != nil {
		t.Fatalf("WALSync: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	p2 := startDurable(t, durableConfig(dir, nil))
	defer p2.Stop()
	drainT(t, p2)
	var ids []uint64
	for {
		out, ok := p2.Egress(0)
		if !ok {
			break
		}
		ids = append(ids, binary.LittleEndian.Uint64(out))
	}
	if len(ids) != 6 {
		t.Fatalf("replayed %d items, want 6 (got %v)", len(ids), ids)
	}
	for i, id := range ids {
		if id != uint64(5+i) {
			t.Fatalf("replay order: got %v, want 5..10", ids)
		}
	}
	st := p2.Stats()
	if st.Replayed != 6 {
		t.Fatalf("Stats.Replayed = %d, want 6", st.Replayed)
	}
	// Producer retries of replayed ids are duplicates too.
	if got := p2.IngressID(0, 8, seqPayload(8)); got != IngressDuplicate {
		t.Fatalf("retry of replayed id: got %v, want duplicate", got)
	}
}

// TestIngressIDDedupWindow: the window is bounded — an id falls out once
// DedupWindow newer ids have been admitted.
func TestIngressIDDedupWindow(t *testing.T) {
	p := startDurable(t, durableConfig(t.TempDir(), func(c *Config) {
		c.Durable.DedupWindow = 4
	}))
	defer p.Stop()
	for i := uint64(1); i <= 4; i++ {
		if st := p.IngressID(0, i, seqPayload(i)); st != IngressAccepted {
			t.Fatalf("IngressID(%d) = %v", i, st)
		}
	}
	if st := p.IngressID(0, 1, seqPayload(1)); st != IngressDuplicate {
		t.Fatalf("in-window retry: got %v, want duplicate", st)
	}
	for i := uint64(5); i <= 8; i++ {
		if st := p.IngressID(0, i, seqPayload(i)); st != IngressAccepted {
			t.Fatalf("IngressID(%d) = %v", i, st)
		}
	}
	// 1 has been evicted by 5..8: admitted again (the window is a
	// bounded promise, not an unbounded one).
	if st := p.IngressID(0, 1, seqPayload(1)); st != IngressAccepted {
		t.Fatalf("evicted-id retry: got %v, want accepted", st)
	}
	if got := p.Stats().Deduped; got != 1 {
		t.Fatalf("Stats.Deduped = %d, want 1", got)
	}
	// Anonymous id 0 never deduplicates.
	if st := p.IngressID(1, 0, seqPayload(0)); st != IngressAccepted {
		t.Fatalf("anonymous: got %v", st)
	}
	if st := p.IngressID(1, 0, seqPayload(0)); st != IngressAccepted {
		t.Fatalf("anonymous repeat: got %v", st)
	}
}

// TestDLQCapturesHandlerFailures: failing items land in the DLQ instead
// of vanishing; draining acks them so they do not replay, while
// un-drained entries do replay after a restart.
func TestDLQCapturesHandlerFailures(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	p := startDurable(t, durableConfig(dir, func(c *Config) {
		c.Handler = func(tenant int, payload []byte) ([]byte, error) {
			if tenant == 0 {
				return nil, boom
			}
			return payload, nil
		}
	}))
	for i := uint64(1); i <= 6; i++ {
		if st := p.IngressID(0, i, seqPayload(i)); st != IngressAccepted {
			t.Fatalf("IngressID(%d) = %v", i, st)
		}
	}
	drainT(t, p)
	st := p.Stats()
	if st.Errors != 6 || st.DeadLettered != 6 || st.DLQDepth != 6 {
		t.Fatalf("errors=%d dead_lettered=%d dlq=%d, want 6/6/6", st.Errors, st.DeadLettered, st.DLQDepth)
	}
	if d := p.DLQDepth(0); d != 6 {
		t.Fatalf("DLQDepth = %d, want 6", d)
	}

	// Drain half: those four disposition (ack) and must not replay.
	ents := p.DrainDLQ(0, 4)
	if len(ents) != 4 {
		t.Fatalf("DrainDLQ returned %d, want 4", len(ents))
	}
	for i, e := range ents {
		if e.Reason != ReasonHandlerError || e.MsgID != uint64(i+1) {
			t.Fatalf("entry %d: %+v", i, e)
		}
	}
	if err := p.WALSync(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	// Restart with a healthy handler: only the two un-drained entries
	// replay, and this time they deliver.
	p2 := startDurable(t, durableConfig(dir, nil))
	defer p2.Stop()
	drainT(t, p2)
	var ids []uint64
	for {
		out, ok := p2.Egress(0)
		if !ok {
			break
		}
		ids = append(ids, binary.LittleEndian.Uint64(out))
	}
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 6 {
		t.Fatalf("replayed ids %v, want [5 6]", ids)
	}
	if got := p2.Stats().Replayed; got != 2 {
		t.Fatalf("Stats.Replayed = %d, want 2", got)
	}
}

// TestDropVictimsDeadLetteredOnce: DropNewest and DropOldest victims
// land in the DLQ exactly once — every dropped seq appears exactly once,
// and the DLQ count matches Stats.Dropped.
func TestDropVictimsDeadLetteredOnce(t *testing.T) {
	for _, policy := range []DeliveryPolicy{DropNewest, DropOldest} {
		t.Run(policy.String(), func(t *testing.T) {
			p := startDurable(t, durableConfig(t.TempDir(), func(c *Config) {
				c.Tenants = 1
				c.RingCapacity = 8
				c.Delivery = policy
			}))
			defer p.Stop()
			// Nobody consumes tenant 0: after 8 delivered items the
			// delivery ring is full and every further item (or its
			// evicted victim) must be dropped into the DLQ. Retry
			// device-ring backpressure — the drop happens at delivery,
			// not admission.
			sent := 0
			for i := uint64(1); i <= 64; i++ {
				for {
					st := p.IngressID(0, i, seqPayload(i))
					if st == IngressAccepted {
						sent++
						break
					}
					if st != IngressBackpressure {
						t.Fatalf("IngressID(%d) = %v", i, st)
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
			drainT(t, p)
			st := p.Stats()
			if st.Dropped == 0 {
				t.Fatalf("no drops despite full delivery ring (sent %d)", sent)
			}
			if st.DeadLettered != st.Dropped {
				t.Fatalf("dead-lettered %d != dropped %d", st.DeadLettered, st.Dropped)
			}
			ents := p.DrainDLQ(0, 0)
			if int64(len(ents)) != st.Dropped {
				t.Fatalf("DLQ has %d entries, dropped %d", len(ents), st.Dropped)
			}
			seen := make(map[uint64]bool, len(ents))
			for _, e := range ents {
				if e.Seq == 0 {
					t.Fatalf("DLQ entry without seq: %+v", e)
				}
				if seen[e.Seq] {
					t.Fatalf("seq %d dead-lettered twice", e.Seq)
				}
				seen[e.Seq] = true
				want := ReasonDropNewest
				if policy == DropOldest {
					want = ReasonDropOldest
				}
				if e.Reason != want {
					t.Fatalf("reason %q, want %q", e.Reason, want)
				}
			}
			// Every admitted item ends in exactly one place. DropNewest
			// victims never enter the ring (delivered + dropped = sent);
			// DropOldest victims are delivered first, then evicted, so
			// what remains in the ring is delivered - dropped.
			switch policy {
			case DropNewest:
				if st.Delivered+st.Dropped != int64(sent) {
					t.Fatalf("delivered %d + dropped %d != sent %d", st.Delivered, st.Dropped, sent)
				}
			case DropOldest:
				if st.Delivered != int64(sent) || st.Delivered-st.Dropped != int64(st.OutBacklog) {
					t.Fatalf("delivered %d dropped %d backlog %d sent %d", st.Delivered, st.Dropped, st.OutBacklog, sent)
				}
			}
		})
	}
}

// TestDroppedMonotoneAcrossRecovery: the persisted drop base makes
// Stats.Dropped monotone across crash/recovery instead of resetting.
func TestDroppedMonotoneAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	p := startDurable(t, durableConfig(dir, func(c *Config) {
		c.Tenants = 1
		c.RingCapacity = 8
		c.Delivery = DropNewest
	}))
	for i := uint64(1); i <= 40; i++ {
		for p.IngressID(0, i, seqPayload(i)) == IngressBackpressure {
			time.Sleep(50 * time.Microsecond)
		}
	}
	drainT(t, p)
	before := p.Stats().Dropped
	if before == 0 {
		t.Fatal("setup produced no drops")
	}
	if err := p.WALSync(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	p2 := startDurable(t, durableConfig(dir, func(c *Config) {
		c.Tenants = 1
		c.RingCapacity = 8
		c.Delivery = DropNewest
	}))
	defer p2.Stop()
	// Before any new traffic the counter already carries the base.
	if got := p2.Stats().Dropped; got < before {
		t.Fatalf("Dropped reset across recovery: %d < %d", got, before)
	}
	drainT(t, p2) // replay of un-acked items may drop more — still monotone
	if got := p2.Stats().Dropped; got < before {
		t.Fatalf("Dropped regressed after replay: %d < %d", got, before)
	}
	if got := p2.TenantStats(0).Dropped; got < before {
		t.Fatalf("per-tenant Dropped regressed: %d < %d", got, before)
	}
}

// TestDurableWALFaultTornWrite: a torn write sticky-fails the log —
// WALSync surfaces the error — and a restart recovers cleanly from the
// torn tail, replaying exactly the records of completed commits.
func TestDurableWALFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	hook := fault.NewWAL(fault.WALConfig{Seed: 42, TearAtCommit: 2})
	t.Logf("%s", hook.Describe())
	p := startDurable(t, durableConfig(dir, func(c *Config) {
		c.Tenants = 1
		c.Durable.FsyncEvery = time.Hour // commits only via WALSync
		c.Durable.Hook = hook
	}))
	// First commit succeeds: ids 1..3 durable.
	for i := uint64(1); i <= 3; i++ {
		if st := p.IngressID(0, i, seqPayload(i)); st != IngressAccepted {
			t.Fatalf("IngressID(%d) = %v", i, st)
		}
	}
	if err := p.WALSync(); err != nil {
		t.Fatalf("first WALSync: %v", err)
	}
	// Second commit is torn mid-buffer: the sync must fail loudly.
	for i := uint64(4); i <= 6; i++ {
		p.IngressID(0, i, seqPayload(i))
	}
	if err := p.WALSync(); err == nil {
		t.Fatal("WALSync succeeded through a torn write")
	}
	if !hook.Stats().Torn {
		t.Fatal("hook reports no torn write")
	}
	_ = p.Stop() // surfaces the sticky error; the plane still stops

	// Recovery: never panics, stops at the torn tail, and replays at
	// least the first commit's records (4..6 may partially survive in
	// the torn prefix — at-least-once, never invented records).
	p2 := startDurable(t, durableConfig(dir, func(c *Config) { c.Tenants = 1 }))
	defer p2.Stop()
	drainT(t, p2)
	got := make(map[uint64]int)
	for {
		out, ok := p2.Egress(0)
		if !ok {
			break
		}
		got[binary.LittleEndian.Uint64(out)]++
	}
	for i := uint64(1); i <= 3; i++ {
		if got[i] != 1 {
			t.Fatalf("durable id %d replayed %d times, want 1 (got %v)", i, got[i], got)
		}
	}
	for id, n := range got {
		if id > 6 || n != 1 {
			t.Fatalf("recovery invented or duplicated records: %v", got)
		}
	}
}

// TestDurableBatchIngress: IngressBatch on a durable plane persists
// every admitted item (bulk append path) and survives restart.
func TestDurableBatchIngress(t *testing.T) {
	dir := t.TempDir()
	p := startDurable(t, durableConfig(dir, nil))
	items := make([]IngressItem, 100)
	for i := range items {
		items[i] = IngressItem{Tenant: i % 2, Payload: seqPayload(uint64(i + 1))}
	}
	if n := p.IngressBatch(items); n != 100 {
		t.Fatalf("IngressBatch accepted %d of 100", n)
	}
	drainT(t, p)
	if err := p.WALSync(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	// Nothing was consumed: everything replays.
	p2 := startDurable(t, durableConfig(dir, nil))
	defer p2.Stop()
	drainT(t, p2)
	total := 0
	for tn := 0; tn < 2; tn++ {
		for {
			if _, ok := p2.Egress(tn); !ok {
				break
			}
			total++
		}
	}
	if total != 100 {
		t.Fatalf("replayed %d of 100 batch items", total)
	}
}

// TestDurableExportSurfaces: Stats, TenantStats, and DebugSnapshot all
// expose the durable-tier series.
func TestDurableExportSurfaces(t *testing.T) {
	p := startDurable(t, durableConfig(t.TempDir(), func(c *Config) {
		c.Handler = func(int, []byte) ([]byte, error) { return nil, errors.New("dlq me") }
	}))
	defer p.Stop()
	p.IngressID(0, 1, seqPayload(1))
	p.IngressID(0, 1, seqPayload(1)) // duplicate
	drainT(t, p)
	if err := p.WALSync(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Deduped != 1 || st.DeadLettered != 1 || st.DLQDepth != 1 {
		t.Fatalf("stats: %+v", st)
	}
	tc := p.TenantStats(0)
	if tc.Deduped != 1 || tc.DeadLettered != 1 {
		t.Fatalf("tenant counts: %+v", tc)
	}
	snap := p.DebugSnapshot()
	if snap.Tenants[0].DLQDepth != 1 {
		t.Fatalf("debug snapshot DLQ depth: %+v", snap.Tenants[0])
	}
	if snap.Tenants[0].DurableSeq == 0 {
		t.Fatalf("debug snapshot durable seq missing: %+v", snap.Tenants[0])
	}
	if ws := p.WALStats(); ws.Appends == 0 || ws.Fsyncs == 0 {
		t.Fatalf("wal stats: %+v", ws)
	}
	if !p.DurableEnabled() {
		t.Fatal("DurableEnabled = false on a durable plane")
	}
}

package dataplane

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperplane"
)

// waitFor polls cond until true or the deadline elapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met before deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPlaneEndToEnd(t *testing.T) {
	for _, mode := range []Mode{Notify, Spin} {
		t.Run(mode.String(), func(t *testing.T) {
			p, err := New(Config{
				Tenants: 4,
				Workers: 2,
				Mode:    mode,
				Handler: func(tenant int, payload []byte) ([]byte, error) {
					return append([]byte{byte(tenant)}, payload...), nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			p.Start()
			defer p.Stop()

			const perTenant = 50
			for i := 0; i < perTenant; i++ {
				for tn := 0; tn < 4; tn++ {
					if !p.Ingress(tn, []byte{byte(i)}) {
						t.Fatal("ingress rejected")
					}
				}
			}
			waitFor(t, 5*time.Second, func() bool {
				return p.Stats().Delivered == 4*perTenant
			})

			for tn := 0; tn < 4; tn++ {
				for i := 0; i < perTenant; i++ {
					v, ok := p.Egress(tn)
					if !ok {
						t.Fatalf("tenant %d: egress %d missing", tn, i)
					}
					if !bytes.Equal(v, []byte{byte(tn), byte(i)}) {
						t.Fatalf("tenant %d item %d = %v", tn, i, v)
					}
				}
				if _, ok := p.Egress(tn); ok {
					t.Fatalf("tenant %d has extra items", tn)
				}
			}
			st := p.Stats()
			if st.Ingressed != 200 || st.Processed != 200 || st.Errors != 0 || st.Backlog != 0 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

func TestEgressWaitBlocksUntilDelivery(t *testing.T) {
	p, err := New(Config{Tenants: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	got := make(chan []byte, 1)
	go func() {
		v, ok := p.EgressWait(0)
		if ok {
			got <- v
		}
	}()
	select {
	case <-got:
		t.Fatal("EgressWait returned before any delivery")
	case <-time.After(20 * time.Millisecond):
	}
	p.Ingress(0, []byte("ping"))
	select {
	case v := <-got:
		if string(v) != "ping" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EgressWait never woke")
	}
}

func TestHandlerErrorsCountedAndDropped(t *testing.T) {
	p, err := New(Config{
		Tenants: 1,
		Handler: func(_ int, payload []byte) ([]byte, error) {
			if payload[0]%2 == 0 {
				return nil, errors.New("boom")
			}
			return payload, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	for i := 0; i < 10; i++ {
		p.Ingress(0, []byte{byte(i)})
	}
	waitFor(t, 5*time.Second, func() bool { return p.Stats().Processed == 10 })
	st := p.Stats()
	if st.Errors != 5 || st.Delivered != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNilHandlerEchoes(t *testing.T) {
	p, _ := New(Config{Tenants: 1})
	p.Start()
	defer p.Stop()
	p.Ingress(0, []byte("echo"))
	waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered == 1 })
	v, ok := p.Egress(0)
	if !ok || string(v) != "echo" {
		t.Fatalf("egress = %q, %v", v, ok)
	}
}

func TestIngressValidation(t *testing.T) {
	p, _ := New(Config{Tenants: 2, RingCapacity: 2})
	p.Start()
	defer p.Stop()
	if p.Ingress(-1, nil) || p.Ingress(2, nil) {
		t.Error("invalid tenant accepted")
	}
	if _, ok := p.Egress(5); ok {
		t.Error("invalid tenant egress succeeded")
	}
}

func TestBackpressure(t *testing.T) {
	// Stopped-but-not-started plane: rings fill, Ingress reports false.
	p, _ := New(Config{Tenants: 1, RingCapacity: 2})
	// No Start: no consumer drains the device ring.
	if !p.Ingress(0, []byte("a")) || !p.Ingress(0, []byte("b")) {
		t.Fatal("initial pushes failed")
	}
	if p.Ingress(0, []byte("c")) {
		t.Error("overfull ring accepted item")
	}
	p.Start()
	defer p.Stop()
	waitFor(t, 5*time.Second, func() bool { return p.Stats().Backlog == 0 })
}

func TestStopSemantics(t *testing.T) {
	p, _ := New(Config{Tenants: 1})
	if err := p.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Errorf("Stop before Start: %v", err)
	}
	p.Start()
	p.Start() // idempotent
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal("second Stop errored")
	}
	if p.Ingress(0, []byte("late")) {
		t.Error("ingress after stop accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Tenants: 0}); err == nil {
		t.Error("zero tenants accepted")
	}
	if _, err := New(Config{Tenants: 1, RingCapacity: 3}); err == nil {
		t.Error("non-power-of-two ring accepted")
	}
	// Workers clamped to tenants.
	p, err := New(Config{Tenants: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.workers) != 2 {
		t.Errorf("workers = %d", len(p.workers))
	}
	if p.Tenants() != 2 || p.Mode() != Notify {
		t.Error("accessors")
	}
}

func TestModeString(t *testing.T) {
	if Notify.String() != "notify" || Spin.String() != "spin" {
		t.Error("mode names")
	}
}

func TestConcurrentIngressManyTenants(t *testing.T) {
	const tenants = 8
	const perTenant = 400
	var handled atomic.Int64
	p, err := New(Config{
		Tenants: tenants,
		Workers: 2,
		Handler: func(_ int, payload []byte) ([]byte, error) {
			handled.Add(1)
			return payload, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				for !p.Ingress(tn, []byte(fmt.Sprintf("%d/%d", tn, i))) {
					time.Sleep(time.Microsecond)
				}
			}
		}(tn)
	}

	// Tenant consumers drain via EgressWait concurrently.
	var consumed atomic.Int64
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				if _, ok := p.EgressWait(tn); !ok {
					return
				}
				consumed.Add(1)
			}
		}(tn)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled")
	}
	if consumed.Load() != tenants*perTenant {
		t.Fatalf("consumed %d of %d", consumed.Load(), tenants*perTenant)
	}
	if handled.Load() != tenants*perTenant {
		t.Fatalf("handled %d", handled.Load())
	}
}

func TestStrictPriorityAcrossTenants(t *testing.T) {
	// Tenant 0 registers first in its worker's notifier -> lowest QID ->
	// strict priority serves it first.
	var mu sync.Mutex
	var order []int
	p, err := New(Config{
		Tenants: 2,
		Workers: 1,
		Policy:  hyperplane.StrictPriority,
		Handler: func(tenant int, payload []byte) ([]byte, error) {
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			return payload, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Queue both tenants' work BEFORE starting, so the worker sees both
	// ready and must order by priority.
	for i := 0; i < 5; i++ {
		p.Ingress(1, []byte{1})
	}
	for i := 0; i < 5; i++ {
		p.Ingress(0, []byte{0})
	}
	p.Start()
	defer p.Stop()
	waitFor(t, 5*time.Second, func() bool { return p.Stats().Processed == 10 })
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 5; i++ {
		if order[i] != 0 {
			t.Fatalf("strict priority violated: %v", order)
		}
	}
}

func TestIngressBatch(t *testing.T) {
	for _, mode := range []Mode{Notify, Spin} {
		t.Run(mode.String(), func(t *testing.T) {
			const tenants = 3
			p, err := New(Config{
				Tenants: tenants,
				Workers: 2,
				Mode:    mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			p.Start()
			defer p.Stop()

			// Mixed-tenant burst with invalid entries sprinkled in: they
			// must be dropped without poisoning the rest of the batch.
			const perTenant = 20
			var batch []IngressItem
			for i := 0; i < perTenant; i++ {
				for tn := 0; tn < tenants; tn++ {
					batch = append(batch, IngressItem{Tenant: tn, Payload: []byte{byte(tn), byte(i)}})
				}
				batch = append(batch, IngressItem{Tenant: -1, Payload: []byte("bad")})
				batch = append(batch, IngressItem{Tenant: tenants, Payload: []byte("bad")})
			}
			if got := p.IngressBatch(batch); got != tenants*perTenant {
				t.Fatalf("IngressBatch accepted %d, want %d", got, tenants*perTenant)
			}
			waitFor(t, 5*time.Second, func() bool {
				return p.Stats().Delivered == tenants*perTenant
			})
			for tn := 0; tn < tenants; tn++ {
				for i := 0; i < perTenant; i++ {
					v, ok := p.Egress(tn)
					if !ok || !bytes.Equal(v, []byte{byte(tn), byte(i)}) {
						t.Fatalf("tenant %d item %d = %v, %v", tn, i, v, ok)
					}
				}
			}
			if st := p.Stats(); st.Ingressed != int64(tenants*perTenant) {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

func TestIngressBatchBackpressureAndStop(t *testing.T) {
	p, _ := New(Config{Tenants: 1, RingCapacity: 2})
	// No Start: the ring fills after two items, the rest drop.
	batch := []IngressItem{
		{Tenant: 0, Payload: []byte("a")},
		{Tenant: 0, Payload: []byte("b")},
		{Tenant: 0, Payload: []byte("c")},
	}
	if got := p.IngressBatch(batch); got != 2 {
		t.Fatalf("accepted %d with capacity 2, want 2", got)
	}
	p.Start()
	p.Stop()
	if got := p.IngressBatch(batch); got != 0 {
		t.Errorf("stopped plane accepted %d", got)
	}
}

// Benchmarks comparing the two notification modes on real hardware: the
// software analogue of Fig. 8's spinning-vs-HyperPlane comparison.
func benchPlane(b *testing.B, mode Mode, tenants int) {
	p, err := New(Config{Tenants: tenants, Workers: 1, Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	payload := []byte("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn := i % tenants
		for !p.Ingress(tn, payload) {
			runtime.Gosched()
		}
		// Yield while waiting so the worker goroutine can run even on a
		// single-CPU machine (GOMAXPROCS=1 would otherwise livelock).
		for {
			if _, ok := p.Egress(tn); ok {
				break
			}
			runtime.Gosched()
		}
	}
}

func BenchmarkPlaneNotify(b *testing.B) { benchPlane(b, Notify, 16) }
func BenchmarkPlaneSpin(b *testing.B)   { benchPlane(b, Spin, 16) }

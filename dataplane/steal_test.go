package dataplane

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStealModeEndToEnd: with the shared-notifier steal path on, every
// item still arrives exactly once and in per-tenant FIFO order — a
// stolen tenant is held by exactly one worker between selection and
// Consume, so stealing never reorders a tenant's stream.
func TestStealModeEndToEnd(t *testing.T) {
	p, err := New(Config{
		Tenants: 8,
		Workers: 4,
		Mode:    Notify,
		Steal:   true,
		Handler: func(tenant int, payload []byte) ([]byte, error) {
			return append([]byte{byte(tenant)}, payload...), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	const perTenant = 200
	for i := 0; i < perTenant; i++ {
		for tn := 0; tn < 8; tn++ {
			for !p.Ingress(tn, []byte{byte(i)}) {
				time.Sleep(10 * time.Microsecond)
			}
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		return p.Stats().Delivered == 8*perTenant
	})
	for tn := 0; tn < 8; tn++ {
		for i := 0; i < perTenant; i++ {
			v, ok := p.Egress(tn)
			if !ok {
				t.Fatalf("tenant %d: egress %d missing", tn, i)
			}
			if !bytes.Equal(v, []byte{byte(tn), byte(i)}) {
				t.Fatalf("tenant %d item %d = %v (FIFO broken under stealing)", tn, i, v)
			}
		}
		if _, ok := p.Egress(tn); ok {
			t.Fatalf("tenant %d has duplicate items", tn)
		}
	}
}

// TestStealModeSkewedTenant: a single hot tenant's backlog completes
// under steal mode with multiple workers — the scenario the steal path
// exists for. Liveness check: no item is stranded when only one bank
// has work.
func TestStealModeSkewedTenant(t *testing.T) {
	p, err := New(Config{
		Tenants:      4,
		Workers:      4,
		Mode:         Notify,
		Steal:        true,
		StealQuantum: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	const items = 2000
	go func() {
		for i := 0; i < items; i++ {
			for !p.Ingress(1, []byte{byte(i)}) {
				time.Sleep(5 * time.Microsecond)
			}
		}
	}()
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < items {
		if _, ok := p.Egress(1); ok {
			got++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained %d of %d items from the hot tenant", got, items)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestStealConfigRules: steal knobs are validated, and Spin mode ignores
// the flag entirely (per-worker spin loops have no banks to steal from).
func TestStealConfigRules(t *testing.T) {
	if _, err := New(Config{Tenants: 2, StealQuantum: -1}); err == nil {
		t.Error("negative StealQuantum accepted")
	}
	p, err := New(Config{Tenants: 2, Workers: 2, Mode: Spin, Steal: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.steal {
		t.Error("Spin mode plane has steal path enabled")
	}
}

// TestChaosStealQuarantineRace races stealing workers against tenant
// quarantine flips and a concurrent Drain: faulty tenants oscillate
// between enabled and quarantined while healthy tenants flood, so steal
// claims keep landing on queues whose enable bit and registration are
// churning. Under -race this is the memory-model check for the
// stolen-flag handoff; functionally, healthy tenants must keep making
// progress and Drain must still complete.
func TestChaosStealQuarantineRace(t *testing.T) {
	var fail atomic.Bool
	p, err := New(Config{
		Tenants:  8,
		Workers:  4,
		Mode:     Notify,
		Steal:    true,
		Delivery: DropNewest,
		Handler: func(tenant int, payload []byte) ([]byte, error) {
			if tenant%4 == 0 && fail.Load() {
				panic("injected fault")
			}
			return payload, nil
		},
		Quarantine: QuarantineConfig{
			Threshold:  2,
			Backoff:    2 * time.Millisecond,
			BackoffMax: 10 * time.Millisecond,
		},
		RestartBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for tn := 0; tn < 8; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			payload := []byte{byte(tn)}
			for !stop.Load() {
				if !p.Ingress(tn, payload) {
					time.Sleep(5 * time.Microsecond)
				}
			}
		}(tn)
		wg.Add(1)
		go func(tn int) { // consumers keep out rings from head-of-line blocking
			defer wg.Done()
			for !stop.Load() {
				if _, ok := p.Egress(tn); !ok {
					time.Sleep(20 * time.Microsecond)
				}
			}
		}(tn)
	}
	// Fault toggler: quarantine enters and exits while steals are in
	// flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20 && !stop.Load(); i++ {
			fail.Store(i%2 == 0)
			time.Sleep(10 * time.Millisecond)
		}
		fail.Store(false)
	}()

	time.Sleep(120 * time.Millisecond)
	before := p.Stats().Delivered
	time.Sleep(120 * time.Millisecond)
	if after := p.Stats().Delivered; after <= before {
		t.Errorf("no delivery progress under steal+quarantine churn: %d -> %d", before, after)
	}
	stop.Store(true)
	wg.Wait()

	// Drain while the steal path is still the consumer side: must
	// complete and leave no backlog.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if bl := p.Stats().Backlog; bl != 0 {
		t.Errorf("backlog %d after drain", bl)
	}
}

package dataplane

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStatsConcurrentSnapshots hammers Stats() while producers ingress,
// workers crash and restart, and the plane finally stops — the snapshot
// surface the telemetry export plane scrapes. Run under -race this also
// proves the merge-on-read counters are data-race free. Each counter
// must be monotone non-decreasing across snapshots (no torn reads, no
// transient undercounts from pre-count/undo bookkeeping).
func TestStatsConcurrentSnapshots(t *testing.T) {
	p, err := New(Config{
		Tenants:    8,
		Workers:    2,
		Mode:       Notify,
		Quarantine: QuarantineConfig{Threshold: 3, Backoff: time.Millisecond},
		Handler: func(tenant int, payload []byte) ([]byte, error) {
			if tenant == 7 {
				return nil, errors.New("poisoned tenant")
			}
			return payload, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Producers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := []byte{1}
			for i := 0; !stop.Load(); i++ {
				p.Ingress((i+g)%8, payload)
			}
		}(g)
	}
	// Tenant consumers, so delivery never wedges on full rings.
	for tn := 0; tn < 8; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for !stop.Load() {
				if _, ok := p.Egress(tn); !ok {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(tn)
	}
	// Crash injector.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			p.workers[i%2].crashNext.Store(true)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Snapshot readers assert monotonicity while everything churns.
	var raceErr atomic.Value
	snapDone := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := Stats{}
			for {
				select {
				case <-snapDone:
					return
				default:
				}
				s := p.Stats()
				if err := checkMonotone(prev, s); err != nil {
					raceErr.Store(err)
					return
				}
				prev = s
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = p.StopContext(ctx)
	// Keep snapshotting across and after Stop, then close the readers.
	time.Sleep(10 * time.Millisecond)
	close(snapDone)
	wg.Wait()

	if err, _ := raceErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Ingressed == 0 || s.Processed == 0 || s.Delivered == 0 {
		t.Fatalf("plane did no work: %+v", s)
	}
	if s.Restarts == 0 {
		t.Errorf("crash injector induced no restarts: %+v", s)
	}
	if s.Errors == 0 {
		t.Errorf("poisoned tenant produced no errors: %+v", s)
	}
	if s.Processed > s.Ingressed {
		t.Errorf("processed %d > ingressed %d", s.Processed, s.Ingressed)
	}
}

func checkMonotone(prev, cur Stats) error {
	type c struct {
		name       string
		prev, curr int64
	}
	for _, f := range []c{
		{"Ingressed", prev.Ingressed, cur.Ingressed},
		{"Processed", prev.Processed, cur.Processed},
		{"Delivered", prev.Delivered, cur.Delivered},
		{"Errors", prev.Errors, cur.Errors},
		{"Panics", prev.Panics, cur.Panics},
		{"Dropped", prev.Dropped, cur.Dropped},
		{"Restarts", prev.Restarts, cur.Restarts},
	} {
		if f.curr < f.prev {
			return fmt.Errorf("counter %s went backwards: %d -> %d", f.name, f.prev, f.curr)
		}
	}
	return nil
}

package dataplane

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestHandlerPanicRecovered: a panicking handler loses only its own item;
// the worker survives and keeps serving, in both modes.
func TestHandlerPanicRecovered(t *testing.T) {
	for _, mode := range []Mode{Notify, Spin} {
		t.Run(mode.String(), func(t *testing.T) {
			p, err := New(Config{
				Tenants: 2,
				Mode:    mode,
				Handler: func(tenant int, payload []byte) ([]byte, error) {
					if payload[0] == 0xff {
						panic("handler bug")
					}
					return payload, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			p.Start()
			defer p.Stop()

			for i := 0; i < 5; i++ {
				p.Ingress(0, []byte{0xff})    // panics
				p.Ingress(1, []byte{byte(i)}) // healthy
			}
			waitFor(t, 5*time.Second, func() bool { return p.Stats().Processed == 10 })
			st := p.Stats()
			if st.Panics != 5 {
				t.Errorf("Panics = %d, want 5", st.Panics)
			}
			if st.Delivered != 5 || st.Errors != 0 {
				t.Errorf("stats = %+v", st)
			}
			if st.Restarts != 0 {
				t.Errorf("handler panic restarted a worker: %+v", st)
			}
			// The worker is still alive: more traffic flows.
			p.Ingress(0, []byte{1})
			waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered == 6 })
		})
	}
}

// TestWorkerCrashRestart: a panic escaping handle (induced via the test
// hook) is recovered by the supervisor, the worker restarts, and the
// partition keeps flowing.
func TestWorkerCrashRestart(t *testing.T) {
	for _, mode := range []Mode{Notify, Spin} {
		t.Run(mode.String(), func(t *testing.T) {
			p, err := New(Config{
				Tenants:        2,
				Mode:           mode,
				RestartBackoff: 100 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			p.Start()
			defer p.Stop()

			p.Ingress(0, []byte("a"))
			waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered == 1 })

			p.workers[0].crashNext.Store(true)
			// In Notify mode the worker is parked; traffic makes it cycle
			// through the crash point.
			p.Ingress(0, []byte("b"))
			waitFor(t, 5*time.Second, func() bool { return p.Stats().Restarts >= 1 })
			// The restarted worker still serves its partition.
			waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered == 2 })
			p.Ingress(1, []byte("c"))
			waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered == 3 })
		})
	}
}

// TestDropNewest: with no consumer, a full tenant ring sheds the newest
// items without holding the worker.
func TestDropNewest(t *testing.T) {
	p, err := New(Config{Tenants: 1, RingCapacity: 4, Delivery: DropNewest})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	for i := 0; i < 10; i++ {
		if !p.Ingress(0, []byte{byte(i)}) {
			t.Fatalf("ingress %d rejected", i)
		}
		// Wait until the item fully cleared delivery (delivered or dropped).
		waitFor(t, 5*time.Second, func() bool {
			st := p.Stats()
			return st.Delivered+st.Dropped == int64(i+1)
		})
	}
	st := p.Stats()
	if st.Delivered != 4 || st.Dropped != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.OutBacklog != 4 {
		t.Errorf("OutBacklog = %d, want 4", st.OutBacklog)
	}
	// The oldest four items survived.
	for i := 0; i < 4; i++ {
		v, ok := p.Egress(0)
		if !ok || v[0] != byte(i) {
			t.Fatalf("egress %d = %v, %v", i, v, ok)
		}
	}
}

// TestDropOldest: the freshest items survive instead.
func TestDropOldest(t *testing.T) {
	p, err := New(Config{Tenants: 1, RingCapacity: 4, Delivery: DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	for i := 0; i < 10; i++ {
		if !p.Ingress(0, []byte{byte(i)}) {
			t.Fatalf("ingress %d rejected", i)
		}
		// DropOldest delivers every item (evicting an older one when
		// full), so Delivered alone tracks completion.
		waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered == int64(i+1) })
	}
	st := p.Stats()
	if st.Delivered != 10 || st.Dropped != 6 {
		t.Fatalf("stats = %+v", st)
	}
	// The newest four items survived, in order.
	for i := 6; i < 10; i++ {
		v, ok := p.Egress(0)
		if !ok || v[0] != byte(i) {
			t.Fatalf("egress = %v, %v, want [%d]", v, ok, i)
		}
	}
}

// TestBlockTimeout: Block with a deadline drops the item after the
// deadline instead of wedging the worker forever.
func TestBlockTimeout(t *testing.T) {
	p, err := New(Config{
		Tenants:         1,
		RingCapacity:    2,
		Delivery:        Block,
		DeliveryTimeout: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	for i := 0; i < 4; i++ {
		if !p.Ingress(0, []byte{byte(i)}) {
			t.Fatalf("ingress %d rejected", i)
		}
		waitFor(t, 5*time.Second, func() bool {
			st := p.Stats()
			return st.Delivered+st.Dropped == int64(i+1)
		})
	}
	st := p.Stats()
	if st.Delivered != 2 || st.Dropped != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Worker is free, not stuck in the delivery loop: new work processes.
	if _, ok := p.Egress(0); !ok {
		t.Fatal("egress empty")
	}
	p.Ingress(0, []byte{9})
	waitFor(t, 5*time.Second, func() bool { return p.Stats().Processed == 5 })
}

// TestQuarantineAndRecovery: a tenant crossing the failure threshold is
// quarantined (its backlog stops being served) and recovers via a probe
// once the fault clears, in both modes.
func TestQuarantineAndRecovery(t *testing.T) {
	for _, mode := range []Mode{Notify, Spin} {
		t.Run(mode.String(), func(t *testing.T) {
			var failing atomic.Bool
			failing.Store(true)
			p, err := New(Config{
				Tenants: 2,
				Mode:    mode,
				Handler: func(tenant int, payload []byte) ([]byte, error) {
					if tenant == 0 && failing.Load() {
						return nil, errors.New("boom")
					}
					return payload, nil
				},
				Quarantine: QuarantineConfig{
					Threshold:  3,
					Backoff:    2 * time.Millisecond,
					BackoffMax: 20 * time.Millisecond,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			p.Start()
			defer p.Stop()

			for i := 0; i < 3; i++ {
				p.Ingress(0, []byte{byte(i)})
			}
			waitFor(t, 5*time.Second, func() bool { return p.Stats().Quarantined == 1 })
			if !p.Quarantined(0) || p.Quarantined(1) {
				t.Fatal("wrong tenant quarantined")
			}

			// While quarantined, tenant 0's backlog is not served (probes
			// keep re-quarantining with backoff, one item at a time), and
			// tenant 1 is unaffected.
			for i := 0; i < 12; i++ {
				p.Ingress(0, []byte{0xaa})
			}
			for i := 0; i < 4; i++ {
				p.Ingress(1, []byte{byte(i)})
			}
			waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered >= 4 })
			if got := p.Stats().Backlog; got == 0 {
				t.Error("quarantined tenant's backlog fully drained while faulty")
			}

			// Fault clears; the next probe succeeds and the backlog drains.
			failing.Store(false)
			waitFor(t, 5*time.Second, func() bool {
				return p.Stats().Quarantined == 0 && p.Stats().Backlog == 0
			})
			if p.Quarantined(0) {
				t.Error("tenant 0 still quarantined after recovery")
			}
			// Everything the failing handler rejected is an error; the
			// rest delivered.
			st := p.Stats()
			if st.Delivered+st.Errors != st.Processed {
				t.Errorf("accounting: %+v", st)
			}
		})
	}
}

// TestDrainAndStopContext: Drain waits for quiescence, respects its
// context, and StopContext stops regardless of drain outcome.
func TestDrainAndStopContext(t *testing.T) {
	p, err := New(Config{
		Tenants: 1,
		Handler: func(_ int, payload []byte) ([]byte, error) {
			time.Sleep(200 * time.Microsecond)
			return payload, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(context.Background()); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Drain before Start = %v", err)
	}
	p.Start()
	for i := 0; i < 20; i++ {
		p.Ingress(0, []byte{byte(i)})
	}
	// A too-short deadline reports DeadlineExceeded...
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	err = p.Drain(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("short Drain = %v", err)
	}
	// ...an adequate one returns nil with the plane quiescent.
	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Backlog != 0 || st.Processed != 20 {
		t.Fatalf("not quiescent after Drain: %+v", st)
	}
	if err := p.StopContext(ctx); err != nil {
		t.Fatal(err)
	}
	if p.Ingress(0, []byte("late")) {
		t.Error("ingress accepted after StopContext")
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Errorf("Drain on stopped quiescent plane = %v", err)
	}
}

// TestDrainStoppedWithBacklog: a plane stopped with queued work reports
// ErrStopped from Drain instead of waiting forever.
func TestDrainStoppedWithBacklog(t *testing.T) {
	block := make(chan struct{})
	p, err := New(Config{
		Tenants: 1,
		Handler: func(_ int, payload []byte) ([]byte, error) {
			<-block
			return payload, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	// Exceed one drain batch: the worker takes MaxBatch items in flight
	// (Stop lets those finish) and the rest stays queued, so the stopped
	// plane genuinely has abandoned backlog.
	for i := 0; i < 64; i++ {
		p.Ingress(0, []byte{byte(i)})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	// Stop waits for the in-flight handler, so it must be released — but
	// only once the stopped flag is set, or a scheduling stall could let
	// the whole backlog drain first. Ingress returning false is the
	// observable edge of that flag, so probe it instead of a wall clock.
	go func() {
		<-ctx.Done()
		for p.Ingress(0, []byte{99}) {
			time.Sleep(200 * time.Microsecond)
		}
		close(block)
	}()
	err = p.StopContext(ctx) // cannot drain: handler is blocked
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("StopContext = %v", err)
	}
	if err := p.Drain(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("Drain after stop with backlog = %v", err)
	}
}

// TestStatsOutBacklog: tenant-side queue depth is observable.
func TestStatsOutBacklog(t *testing.T) {
	p, _ := New(Config{Tenants: 2})
	p.Start()
	defer p.Stop()
	for i := 0; i < 3; i++ {
		p.Ingress(0, []byte{byte(i)})
	}
	waitFor(t, 5*time.Second, func() bool { return p.Stats().Delivered == 3 })
	st := p.Stats()
	if st.OutBacklog != 3 || st.Backlog != 0 {
		t.Fatalf("stats = %+v", st)
	}
	p.Egress(0)
	if st := p.Stats(); st.OutBacklog != 2 {
		t.Fatalf("OutBacklog after egress = %d", st.OutBacklog)
	}
}

// TestDeliveryPolicyValidationAndStrings covers config validation and the
// String methods of the new types.
func TestDeliveryPolicyValidationAndStrings(t *testing.T) {
	if _, err := New(Config{Tenants: 1, Delivery: DeliveryPolicy(9)}); err == nil {
		t.Error("bogus delivery policy accepted")
	}
	if _, err := New(Config{Tenants: 1, Quarantine: QuarantineConfig{Threshold: -1}}); err == nil {
		t.Error("negative quarantine threshold accepted")
	}
	if Block.String() != "block" || DropNewest.String() != "drop-newest" || DropOldest.String() != "drop-oldest" {
		t.Error("DeliveryPolicy strings")
	}
	// Quarantine defaults are filled in.
	p, err := New(Config{Tenants: 1, Quarantine: QuarantineConfig{Threshold: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.Quarantine.Backoff <= 0 || p.cfg.Quarantine.BackoffMax < p.cfg.Quarantine.Backoff {
		t.Errorf("quarantine defaults = %+v", p.cfg.Quarantine)
	}
	if p.Quarantined(-1) || p.Quarantined(5) {
		t.Error("Quarantined out-of-range")
	}
}

// TestEgressWaitDropOldestConcurrent exercises the locked tenant-side pop
// path (DropOldest) against a concurrently evicting worker under load.
func TestEgressWaitDropOldestConcurrent(t *testing.T) {
	p, err := New(Config{Tenants: 1, RingCapacity: 4, Delivery: DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	const n = 300
	done := make(chan int)
	go func() {
		got := 0
		for {
			v, ok := p.EgressWait(0)
			if !ok {
				done <- got
				return
			}
			if len(v) != 1 {
				t.Error("bad payload")
				done <- got
				return
			}
			got++
		}
	}()
	for i := 0; i < n; i++ {
		for !p.Ingress(0, []byte{byte(i)}) {
			time.Sleep(time.Microsecond)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return p.Stats().Processed == n })
	p.Stop()
	got := <-done
	st := p.Stats()
	if int64(got) < st.Delivered-st.Dropped-int64(st.OutBacklog) {
		t.Errorf("consumer saw %d, stats %+v", got, st)
	}
}

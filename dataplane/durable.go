// Durable tier: opt-in per-tenant durability for the data plane
// (Config.Durable). The lifecycle is persist → enqueue → ack → truncate
// (DESIGN.md §12):
//
//   - Ingress assigns the tenant's next monotone sequence number, places
//     the item on the device ring, and appends a WAL record — all under
//     one short per-tenant mutex, so seqs enter the ring in order even
//     with SharedIngress producers. The append is an in-memory batch
//     encode (zero allocations); the WAL's group committer makes it
//     durable at the next fsync window, and producers gate on
//     WALSync/DurableSeq exactly like the paper's doorbell producers
//     gate on the notification watermark.
//   - Egress acks the item's seq; acks advance a contiguous per-tenant
//     watermark that the group committer persists, and fully-acked WAL
//     segments are unlinked.
//   - On restart, recovery replays every appended-but-unacked record
//     through normal ingress (policy charging, quarantine, and telemetry
//     all see replayed items as ordinary traffic), and re-seeds the
//     dedup window so producer retries of already-admitted message ids
//     are rejected — exactly-once admission per message id within the
//     window, at-least-once delivery overall.
//   - Items the plane would otherwise silently lose — handler errors,
//     handler panics (including quarantine-exhausting streaks), drop
//     policy victims, delivery timeouts — are captured by a bounded
//     per-tenant dead-letter queue. DLQ entries stay un-acked, so they
//     survive a crash and replay; draining them acks. A full DLQ evicts
//     (and acks) its oldest entry so WAL retention stays bounded.
package dataplane

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/internal/dedup"
	"hyperplane/internal/wal"
)

// DurableConfig enables the durable tier when Dir is non-empty.
type DurableConfig struct {
	// Dir is the WAL segment directory (created if missing). Empty
	// disables durability.
	Dir string
	// FsyncEvery is the group-commit window: items become durable at the
	// next window tick or a forced WALSync (default 2ms).
	FsyncEvery time.Duration
	// SegmentBytes rotates WAL segments at this size (default 4 MiB).
	SegmentBytes int
	// DedupWindow bounds the per-tenant message-id history used for
	// exactly-once admission (default 4096 ids).
	DedupWindow int
	// DLQCapacity bounds each tenant's dead-letter queue (default 1024);
	// a full DLQ evicts and acks its oldest entry.
	DLQCapacity int
	// Hook, when non-nil, intercepts WAL writes and fsyncs — fault
	// injection for chaos tests (see internal/fault.NewWAL).
	Hook wal.Hook
}

// DLQEntry is one dead-lettered item.
type DLQEntry struct {
	Tenant  int    `json:"tenant"`
	Seq     uint64 `json:"seq"`
	MsgID   uint64 `json:"msg_id,omitempty"`
	Payload []byte `json:"payload"`
	Reason  string `json:"reason"`
}

// DLQ capture reasons.
const (
	ReasonHandlerError    = "handler-error"
	ReasonHandlerPanic    = "handler-panic"
	ReasonDropNewest      = "drop-newest"
	ReasonDropOldest      = "drop-oldest"
	ReasonDeliveryTimeout = "delivery-timeout"
	ReasonStopDrop        = "stop-drop"
)

// IngressStatus is IngressID's admission verdict.
type IngressStatus uint8

// IngressID outcomes.
const (
	// IngressAccepted: the item was admitted (and, on a durable plane,
	// appended to the WAL for the next group commit).
	IngressAccepted IngressStatus = iota
	// IngressDuplicate: the message id is inside the tenant's dedup
	// window — a producer retry of an already-admitted item.
	IngressDuplicate
	// IngressBackpressure: the tenant's device ring is full; retry.
	IngressBackpressure
	// IngressRejected: invalid tenant or stopped plane.
	IngressRejected
)

func (s IngressStatus) String() string {
	switch s {
	case IngressAccepted:
		return "accepted"
	case IngressDuplicate:
		return "duplicate"
	case IngressBackpressure:
		return "backpressure"
	}
	return "rejected"
}

// durTenant is one tenant's durable state. mu serializes admission (seq
// assignment + ring push + WAL append + dedup bookkeeping); the DLQ has
// its own lock so drains never contend with the ingress path. The seen
// window is the shared internal/dedup machinery the network edge's
// idempotency keys ride too.
type durTenant struct {
	mu      sync.Mutex
	nextSeq uint64
	seen    *dedup.Window
	dropped atomic.Uint64 // cumulative drops, persisted via NoteDropped

	dlqMu sync.Mutex
	dlq   []DLQEntry
}

// durable is the plane's durable-tier runtime.
type durable struct {
	log     *wal.Log
	tenants []durTenant
	dlqCap  int

	// replay is the recovery set Start feeds back through ingress;
	// replayPending gates Drain until every record is re-admitted.
	replay        []wal.Record
	replayPending atomic.Int64

	// recPool recycles IngressBatch's WAL-record staging buffers, mirroring
	// runPool on the ring side.
	recPool sync.Pool
}

// newDurable opens the WAL and builds the per-tenant durable state,
// seeding seq counters, drop bases, and dedup windows from recovery.
func newDurable(cfg Config) (*durable, error) {
	dc := cfg.Durable
	if dc.DedupWindow <= 0 {
		dc.DedupWindow = wal.DefaultSeenWindow
	}
	if dc.DLQCapacity <= 0 {
		dc.DLQCapacity = 1024
	}
	log, rec, err := wal.Open(wal.Config{
		Dir:          dc.Dir,
		Streams:      cfg.Tenants,
		SegmentBytes: dc.SegmentBytes,
		FsyncEvery:   dc.FsyncEvery,
		SeenWindow:   dc.DedupWindow,
		Hook:         dc.Hook,
	})
	if err != nil {
		return nil, fmt.Errorf("dataplane: durable tier: %w", err)
	}
	d := &durable{
		log:     log,
		tenants: make([]durTenant, cfg.Tenants),
		dlqCap:  dc.DLQCapacity,
		replay:  rec.Records,
		recPool: sync.Pool{New: func() any { return new([64]wal.Record) }},
	}
	d.replayPending.Store(int64(len(rec.Records)))
	for t := range d.tenants {
		dt := &d.tenants[t]
		dt.nextSeq = rec.MaxSeq[t]
		dt.dropped.Store(rec.DroppedBase[t])
		dt.seen = dedup.NewWindow(dc.DedupWindow)
		for _, id := range rec.SeenIDs[t] {
			dt.seen.Remember(id, 0)
		}
	}
	return d, nil
}

// IngressID admits one work item under a producer-chosen message id:
// retries with the same id inside the tenant's dedup window are rejected
// as duplicates, giving exactly-once admission per id. Id 0 is
// anonymous (never deduplicated, like plain Ingress). On an in-memory
// plane IngressID degrades to Ingress semantics — no dedup, no
// durability.
func (p *Plane) IngressID(tenant int, msgID uint64, payload []byte) IngressStatus {
	if tenant < 0 || tenant >= p.cfg.Tenants {
		return IngressRejected
	}
	if p.dur == nil {
		if p.Ingress(tenant, payload) {
			return IngressAccepted
		}
		if p.stopped.Load() {
			return IngressRejected
		}
		return IngressBackpressure
	}
	return p.ingressDurable(tenant, msgID, payload)
}

// ingressDurable is the durable admission path: dedup check, seq
// assignment, ring push, and WAL append under the tenant's admission
// mutex, then the doorbell. The push happens before the append so a
// backpressure rejection changes nothing (no seq burned, no dedup entry,
// nothing logged) and the producer can retry the same message id; the
// durability promise is unaffected because acceptance never implies
// durability — only a WALSync (or the group-commit tick) does.
func (p *Plane) ingressDurable(tenant int, msgID uint64, payload []byte) IngressStatus {
	p.ingressing.Add(1)
	defer p.ingressing.Add(-1)
	if p.stopped.Load() {
		return IngressRejected
	}
	d := &p.dur.tenants[tenant]
	d.mu.Lock()
	if msgID != 0 && d.seen.Seen(msgID) {
		d.mu.Unlock()
		p.m.Deduped.Add(p.m.IngressStripe(), tenant, 1)
		return IngressDuplicate
	}
	p.ingressed.Add(1)
	seq := d.nextSeq + 1
	if !p.devRings[tenant].Push(item{seq: seq, msgID: msgID, payload: payload}) {
		p.ingressed.Add(-1)
		d.mu.Unlock()
		return IngressBackpressure
	}
	d.nextSeq = seq
	// A sticky WAL failure (disk gone) does not retract the admitted
	// item — it flows at-least-once — but WALSync and the group
	// committer surface the error, so durability-gated producers stop.
	_ = p.dur.log.Append(wal.Record{Tenant: tenant, Seq: seq, MsgID: msgID, Payload: payload})
	if msgID != 0 {
		d.seen.Remember(msgID, 0)
	}
	d.mu.Unlock()
	p.m.Ingressed.Add(p.m.IngressStripe(), tenant, 1)
	if p.cfg.Mode == Notify {
		w := p.workers[tenant%p.cfg.Workers]
		w.n.Notify(w.qidByTenant[tenant])
	}
	return IngressAccepted
}

// ingressBatchDurable bulk-admits one same-tenant run under a single
// mutex hold: one PushBatch, one AppendBatch, one doorbell — the durable
// analogue of IngressBatch's bulk-push fast path. Returns the number
// admitted. Batch items are anonymous (no message ids), so there is no
// dedup check to pay.
func (p *Plane) ingressBatchDurable(tenant int, payloads []IngressItem, run *[64]item) int {
	d := &p.dur.tenants[tenant]
	recs := p.dur.recPool.Get().(*[64]wal.Record)
	pushed := 0
	d.mu.Lock()
	for off := 0; off < len(payloads); {
		c := len(payloads) - off
		if c > len(run) {
			c = len(run)
		}
		for k := 0; k < c; k++ {
			run[k] = item{seq: d.nextSeq + uint64(k) + 1, payload: payloads[off+k].Payload, tag: payloads[off+k].Tag}
		}
		got := p.devRings[tenant].PushBatch(run[:c])
		for k := 0; k < got; k++ {
			recs[k] = wal.Record{Tenant: tenant, Seq: run[k].seq, Payload: run[k].payload}
		}
		d.nextSeq += uint64(got)
		if got > 0 {
			_ = p.dur.log.AppendBatch(recs[:got])
		}
		pushed += got
		off += got
		if got < c {
			break // ring full: drop the rest of the run like Ingress would
		}
	}
	d.mu.Unlock()
	clear(recs[:])
	p.dur.recPool.Put(recs)
	return pushed
}

// ackItem marks a durable item consumed; the WAL persists the watermark
// at the next group commit. No-op for in-memory planes and pre-durable
// items (seq 0).
func (p *Plane) ackItem(tenant int, it item) {
	if p.dur != nil && it.seq != 0 {
		p.dur.log.Ack(tenant, it.seq)
	}
}

// dropItem charges a delivery-policy drop and, on a durable plane,
// advances the persisted drop count and captures the victim in the DLQ —
// a dropped item is never silently lost under durability.
func (p *Plane) dropItem(stripe, tenant int, it item, reason string) {
	p.m.Dropped.Add(stripe, tenant, 1)
	if p.dur == nil {
		return
	}
	d := &p.dur.tenants[tenant]
	p.dur.log.NoteDropped(tenant, d.dropped.Add(1))
	p.deadLetter(stripe, tenant, it, reason)
}

// deadLetter captures an item the plane is about to lose. The entry
// keeps its WAL seq un-acked, so an un-drained DLQ entry replays after a
// crash; a full DLQ evicts and acks its oldest entry so the WAL's
// retention stays bounded by DLQCapacity per tenant.
func (p *Plane) deadLetter(stripe, tenant int, it item, reason string) {
	if p.dur == nil {
		return
	}
	d := &p.dur.tenants[tenant]
	payload := it.payload
	if p.cfg.OnDeliver != nil && payload != nil {
		// With an egress hook the producer's buffer (an edge slab) is
		// recycled as soon as the item retires; the DLQ must own a copy.
		payload = append([]byte(nil), payload...)
	}
	var evicted DLQEntry
	var overflow bool
	d.dlqMu.Lock()
	if len(d.dlq) >= p.dur.dlqCap {
		evicted, overflow = d.dlq[0], true
		copy(d.dlq, d.dlq[1:])
		d.dlq = d.dlq[:len(d.dlq)-1]
	}
	d.dlq = append(d.dlq, DLQEntry{
		Tenant: tenant, Seq: it.seq, MsgID: it.msgID,
		Payload: payload, Reason: reason,
	})
	d.dlqMu.Unlock()
	if overflow && evicted.Seq != 0 {
		p.dur.log.Ack(tenant, evicted.Seq)
	}
	p.m.DeadLettered.Add(stripe, tenant, 1)
}

// DLQDepth returns the tenant's current dead-letter queue depth (0 on
// in-memory planes).
func (p *Plane) DLQDepth(tenant int) int {
	if p.dur == nil || tenant < 0 || tenant >= p.cfg.Tenants {
		return 0
	}
	d := &p.dur.tenants[tenant]
	d.dlqMu.Lock()
	n := len(d.dlq)
	d.dlqMu.Unlock()
	return n
}

// DrainDLQ removes and returns up to max dead-lettered entries for the
// tenant (all of them when max <= 0), oldest first, acking each removed
// entry's WAL record — draining is the operator's statement that the
// item has been dispositioned and must not replay.
func (p *Plane) DrainDLQ(tenant, max int) []DLQEntry {
	if p.dur == nil || tenant < 0 || tenant >= p.cfg.Tenants {
		return nil
	}
	d := &p.dur.tenants[tenant]
	d.dlqMu.Lock()
	n := len(d.dlq)
	if max > 0 && max < n {
		n = max
	}
	if n == 0 {
		d.dlqMu.Unlock()
		return nil
	}
	out := make([]DLQEntry, n)
	copy(out, d.dlq[:n])
	rest := copy(d.dlq, d.dlq[n:])
	clear(d.dlq[rest:])
	d.dlq = d.dlq[:rest]
	d.dlqMu.Unlock()
	for _, e := range out {
		if e.Seq != 0 {
			p.dur.log.Ack(tenant, e.Seq)
		}
	}
	return out
}

// WALSync forces a group commit and blocks until everything appended
// before the call is durable — the producer-side durability barrier.
// Nil (and a no-op) on in-memory planes.
func (p *Plane) WALSync() error {
	if p.dur == nil {
		return nil
	}
	return p.dur.log.Sync()
}

// WALStats returns the WAL activity counters (zero value on in-memory
// planes).
func (p *Plane) WALStats() wal.Stats {
	if p.dur == nil {
		return wal.Stats{}
	}
	return p.dur.log.Stats()
}

// DurableEnabled reports whether the plane runs the durable tier.
func (p *Plane) DurableEnabled() bool { return p.dur != nil }

// DurableSeq returns the tenant's fsynced durability watermark: every
// admitted seq at or below it survives a crash.
func (p *Plane) DurableSeq(tenant int) uint64 {
	if p.dur == nil || tenant < 0 || tenant >= p.cfg.Tenants {
		return 0
	}
	return p.dur.log.Durable(tenant)
}

// AckedSeq returns the tenant's contiguous consumption watermark.
func (p *Plane) AckedSeq(tenant int) uint64 {
	if p.dur == nil || tenant < 0 || tenant >= p.cfg.Tenants {
		return 0
	}
	return p.dur.log.Acked(tenant)
}

// Replaying reports how many recovered records still await re-admission.
func (p *Plane) Replaying() int64 {
	if p.dur == nil {
		return 0
	}
	return p.dur.replayPending.Load()
}

// replayLoop re-admits the recovery set through normal ingress: each
// record keeps its original seq (so its eventual ack lands on the same
// watermark) and message id, skips the dedup check (it was admitted
// once already — the seeded window exists to reject producer retries,
// not the replay itself), and is not re-appended to the WAL. Full rings
// back off and retry, so a replay set larger than the ring capacity
// drains through the workers like ordinary traffic.
func (p *Plane) replayLoop() {
	defer p.wg.Done()
	for _, r := range p.dur.replay {
		for !p.replayOne(r) {
			if p.stopped.Load() {
				return
			}
			runtime.Gosched()
		}
		p.dur.replayPending.Add(-1)
	}
	p.dur.replay = nil
}

// replayOne pushes one recovered record, reporting false on ring
// backpressure (or a stopping plane).
func (p *Plane) replayOne(r wal.Record) bool {
	p.ingressing.Add(1)
	defer p.ingressing.Add(-1)
	if p.stopped.Load() {
		return true // abandon: the record stays un-acked and replays next start
	}
	tenant := r.Tenant
	p.ingressed.Add(1)
	if !p.devRings[tenant].Push(item{seq: r.Seq, msgID: r.MsgID, payload: r.Payload}) {
		p.ingressed.Add(-1)
		return false
	}
	p.m.Ingressed.Add(p.m.IngressStripe(), tenant, 1)
	p.m.Replayed.Add(p.m.IngressStripe(), tenant, 1)
	if p.cfg.Mode == Notify {
		w := p.workers[tenant%p.cfg.Workers]
		w.n.Notify(w.qidByTenant[tenant])
	}
	return true
}

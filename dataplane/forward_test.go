package dataplane

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTenantForwardDivertsIngress: with a forward installed, the
// tenant's new arrivals go to the forward func instead of the local
// rings, while other tenants keep ingesting locally.
func TestTenantForwardDivertsIngress(t *testing.T) {
	p, err := New(Config{Tenants: 2, Handler: func(_ int, b []byte) ([]byte, error) { return b, nil }})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	var mu sync.Mutex
	var got [][]byte
	if err := p.SetTenantForward(0, func(items []IngressItem) int {
		mu.Lock()
		for _, it := range items {
			got = append(got, append([]byte(nil), it.Payload...))
		}
		mu.Unlock()
		return len(items)
	}); err != nil {
		t.Fatal(err)
	}

	if !p.Ingress(0, []byte("fwd-a")) {
		t.Fatal("forwarded ingress reported rejection")
	}
	n := p.IngressBatch([]IngressItem{
		{Tenant: 0, Payload: []byte("fwd-b")},
		{Tenant: 1, Payload: []byte("local")},
		{Tenant: 0, Payload: []byte("fwd-c")},
	})
	if n != 3 {
		t.Fatalf("IngressBatch accepted %d, want 3", n)
	}

	mu.Lock()
	forwarded := len(got)
	mu.Unlock()
	if forwarded != 3 {
		t.Fatalf("forward saw %d items, want 3", forwarded)
	}
	// Forwarded items are owned remotely: they never enter this plane's
	// ingressed/processed balance, so Drain settles on tenant 1 alone.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if c := p.TenantStats(0); c.Ingressed != 0 {
		t.Fatalf("forwarded tenant counted %d local ingresses", c.Ingressed)
	}
	if c := p.TenantStats(1); c.Ingressed != 1 || c.Processed != 1 {
		t.Fatalf("local tenant counts = %+v", c)
	}

	// Clearing the forward restores local ingest.
	if err := p.SetTenantForward(0, nil); err != nil {
		t.Fatal(err)
	}
	if !p.Ingress(0, []byte("back")) {
		t.Fatal("local ingress rejected after clearing forward")
	}
	waitFor(t, 5*time.Second, func() bool { return p.TenantStats(0).Processed == 1 })
}

// TestTenantForwardPartialAccept: a forward that accepts only part of a
// run propagates the shortfall to the caller, like a full ring would.
func TestTenantForwardPartialAccept(t *testing.T) {
	p, err := New(Config{Tenants: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	p.SetTenantForward(0, func(items []IngressItem) int { return 1 })
	n := p.IngressBatch([]IngressItem{
		{Tenant: 0, Payload: []byte("a")},
		{Tenant: 0, Payload: []byte("b")},
		{Tenant: 0, Payload: []byte("c")},
	})
	if n != 1 {
		t.Fatalf("accepted %d, want 1", n)
	}
	p.SetTenantForward(0, func(items []IngressItem) int { return 0 })
	if p.Ingress(0, []byte("x")) {
		t.Fatal("Ingress reported acceptance for a rejecting forward")
	}
}

// TestTenantForwardRetiresTags: tags on forwarded items are released
// through the egress hook's retire path (nil payload) once the forward
// accepts them — the remote owner delivers, but slab-style resources
// are local. Rejected items keep their tags (the producer still owns
// them).
func TestTenantForwardRetiresTags(t *testing.T) {
	var retired atomic.Int64
	p, err := New(Config{
		Tenants: 1,
		OnDeliver: func(tenant int, payload []byte, tag uint64) {
			if payload == nil && tag != 0 {
				retired.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	p.SetTenantForward(0, func(items []IngressItem) int { return 2 })
	p.IngressBatch([]IngressItem{
		{Tenant: 0, Payload: []byte("a"), Tag: 101},
		{Tenant: 0, Payload: []byte("b"), Tag: 102},
		{Tenant: 0, Payload: []byte("c"), Tag: 103}, // rejected: tag stays live
	})
	if got := retired.Load(); got != 2 {
		t.Fatalf("retired %d tags, want 2", got)
	}
}

// TestDrainTenantSettlesBacklog: DrainTenant returns once the tenant's
// queued work has fully passed through, even while another tenant keeps
// a standing backlog.
func TestDrainTenantSettlesBacklog(t *testing.T) {
	block := make(chan struct{})
	p, err := New(Config{
		Tenants: 2,
		Workers: 2,
		Handler: func(tenant int, b []byte) ([]byte, error) {
			if tenant == 1 {
				<-block // tenant 1 wedged; must not stall tenant 0's drain
			}
			return b, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	defer close(block)

	for i := 0; i < 100; i++ {
		if !p.Ingress(0, []byte{byte(i)}) {
			t.Fatal("ingress rejected")
		}
	}
	p.Ingress(1, []byte("wedge"))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.DrainTenant(ctx, 0); err != nil {
		t.Fatalf("DrainTenant: %v", err)
	}
	c := p.TenantStats(0)
	if c.Processed != c.Ingressed || c.Ingressed != 100 {
		t.Fatalf("tenant 0 not settled after drain: %+v", c)
	}
	dev, _ := p.TenantBacklog(0)
	if dev != 0 {
		t.Fatalf("device backlog %d after drain", dev)
	}

	// The wedged tenant's drain must respect the deadline instead.
	short, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if err := p.DrainTenant(short, 1); err != context.DeadlineExceeded {
		t.Fatalf("wedged tenant drain = %v, want deadline exceeded", err)
	}
}

// TestDrainTenantValidation: bad tenant and unstarted plane error out.
func TestDrainTenantValidation(t *testing.T) {
	p, err := New(Config{Tenants: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DrainTenant(context.Background(), 0); err != ErrNotStarted {
		t.Fatalf("unstarted drain = %v, want ErrNotStarted", err)
	}
	p.Start()
	defer p.Stop()
	if err := p.DrainTenant(context.Background(), 5); err == nil {
		t.Fatal("out-of-range tenant drained")
	}
	if err := p.SetTenantForward(-1, nil); err == nil {
		t.Fatal("out-of-range forward installed")
	}
}

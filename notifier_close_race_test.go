package hyperplane

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosNotifierCloseRaces hammers Close against concurrent Wait,
// WaitBatch, Notify, and Register/Unregister churn on the banked notifier.
// The invariants: no panic, every blocked waiter is released by Close
// (ok=false / 0), Register after Close reports ErrClosed, and nothing
// deadlocks — all under -race.
func TestChaosNotifierCloseRaces(t *testing.T) {
	const rounds = 25
	for round := 0; round < rounds; round++ {
		n, err := NewNotifier(NotifierConfig{MaxQueues: 64, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}

		// Seed some registered queues the notifiers can ring.
		dbs := make([]*atomic.Int64, 8)
		qids := make([]QID, 8)
		for i := range qids {
			dbs[i] = new(atomic.Int64)
			qid, err := n.Register(dbs[i])
			if err != nil {
				t.Fatal(err)
			}
			qids[i] = qid
		}

		var wg sync.WaitGroup
		start := make(chan struct{})

		// Blocking waiters: must all be released by Close with ok=false.
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for {
					qid, ok := n.Wait()
					if !ok {
						return
					}
					n.Consume(qid)
				}
			}()
		}
		// Batch waiter: Close must make WaitBatch return 0.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			dst := make([]QID, 16)
			for {
				c := n.WaitBatch(dst)
				if c == 0 {
					return
				}
				for _, qid := range dst[:c] {
					n.Consume(qid)
				}
			}
		}()
		// Notifiers: Notify must stay safe during and after Close.
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 10000; i++ {
					q := (g*4 + i) % len(qids)
					dbs[q].Add(1)
					n.Notify(qids[q])
					n.NotifyBatch(qids[q : q+1])
				}
			}(g)
		}
		// Register/Unregister churner: runs until Close flips it to
		// ErrClosed; after that every attempt must keep reporting ErrClosed.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			db := new(atomic.Int64)
			for {
				qid, err := n.Register(db)
				if err != nil {
					if errors.Is(err, ErrClosed) {
						if _, err := n.Register(db); !errors.Is(err, ErrClosed) {
							t.Error("Register after Close did not return ErrClosed")
						}
						return
					}
					if errors.Is(err, ErrFull) {
						continue
					}
					t.Errorf("Register: unexpected error %v", err)
					return
				}
				db.Add(1)
				n.Notify(qid)
				if err := n.Unregister(qid); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("Unregister: unexpected error %v", err)
					return
				}
			}
		}()
		// Enable/Disable churner racing Close (the quarantine path).
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				q := qids[i%len(qids)]
				if err := n.Disable(q); errors.Is(err, ErrClosed) {
					return
				}
				_ = n.Enable(q)
			}
		}()

		// The racing Close, staggered a little more each round.
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			<-start
			time.Sleep(time.Duration(round%5) * 200 * time.Microsecond)
			n.Close()
		}(round)

		close(start)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("goroutines did not drain after Close: waiter or churner stuck")
		}

		// Post-close determinism.
		if _, ok := n.Wait(); ok {
			t.Fatal("Wait returned ok after Close")
		}
		if c := n.WaitBatch(make([]QID, 4)); c != 0 {
			t.Fatalf("WaitBatch returned %d after Close", c)
		}
		if _, ok := n.TryWait(); ok {
			t.Fatal("TryWait returned ok after Close")
		}
		n.Notify(qids[0]) // must not panic
		n.Close()         // idempotent
	}
}

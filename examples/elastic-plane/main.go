// Elastic plane: the power-proportional control plane end to end.
//
// An eight-tenant, four-worker Notify plane runs under the governor in
// Balanced mode (hybrid spin-then-park wait, elastic active set). Act 1
// trickles load at a few percent of capacity and watches the governor
// halt surplus workers — the runtime analog of the paper's C1 core
// halting (Figs. 11/12), with the survivors' sweeps covering every bank
// so no tenant strands. Act 2 floods a burst and watches the set grow
// back within a few control ticks. Act 3 switches operating modes live
// (low-latency pins the full set spinning; efficient parks eagerly)
// without restarting the plane.
//
// Run with: go run ./examples/elastic-plane
// CI runs:  go run ./examples/elastic-plane -smoke
// (same program; -smoke exits non-zero if the set fails to shrink at
// trickle load or recover on burst. On a single-core host the elastic
// assertions are reported but not fatal — there is no parallelism to
// take away, matching the bench suite's scaling_note fallback.)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/governor"
)

const (
	tenants = 8
	workers = 4
)

func main() {
	smoke := flag.Bool("smoke", false, "CI mode: short run, exit nonzero on elastic-behavior failure")
	flag.Parse()

	p, err := dataplane.New(dataplane.Config{
		Tenants:  tenants,
		Workers:  workers,
		Mode:     dataplane.Notify,
		MaxBatch: 8,
		Handler: func(tenant int, payload []byte) ([]byte, error) {
			time.Sleep(20 * time.Microsecond) // stand-in for real per-item work
			return payload, nil
		},
		Governor: dataplane.GovernorConfig{
			Enable:      true, // Balanced by default: hybrid wait + elastic set
			Interval:    500 * time.Microsecond,
			ShrinkAfter: 4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	// Tenant-side consumers drain deliveries for the whole run.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for !stop.Load() {
				if _, ok := p.Egress(tn); !ok {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(tn)
	}

	fmt.Printf("operating point: %s\n", p.ModeString())
	failures := 0
	check := func(ok bool, format string, a ...any) {
		if !ok {
			failures++
			fmt.Printf("FAIL: "+format+"\n", a...)
		}
	}

	// Act 1 — trickle: a paced drip to every tenant, far below capacity.
	// The governor should walk the active set down to its floor while the
	// drip keeps flowing through whichever workers survive.
	fmt.Println("\n--- act 1: trickle load, expect the active set to shrink ---")
	trickleStop := make(chan struct{})
	var trickled atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-trickleStop:
				return
			case <-time.After(200 * time.Microsecond):
				if p.Ingress(i%tenants, []byte{byte(i)}) {
					trickled.Add(1)
				}
				i++
			}
		}
	}()
	low := pollActive(p, 3*time.Second, func(a int) bool { return a < workers })
	fmt.Printf("active workers: %d/%d (governor: %s)\n", low, workers, statusLine(p))
	check(low < workers, "active set never shrank below %d at trickle load", workers)
	close(trickleStop)

	// Act 2 — burst: flood enough backlog to trip the grow threshold.
	fmt.Println("\n--- act 2: burst, expect the set to grow back ---")
	for i := 0; i < 4000; i++ {
		for !p.Ingress(i%tenants, []byte{byte(i)}) {
			time.Sleep(5 * time.Microsecond)
		}
	}
	grown := pollActive(p, 3*time.Second, func(a int) bool { return a > low })
	fmt.Printf("active workers: %d/%d (governor: %s)\n", grown, workers, statusLine(p))
	check(grown > low, "active set stuck at %d after a %d-item burst", grown, 4000)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = p.Drain(ctx)
	cancel()
	check(err == nil, "burst did not drain: %v", err)

	// Act 3 — live mode switching: no restart, the wait strategy and the
	// control law follow the mode.
	fmt.Println("\n--- act 3: live operating-mode switches ---")
	for _, m := range []governor.Mode{governor.LowLatency, governor.Efficient, governor.Balanced} {
		if err := p.SetGovernorMode(m); err != nil {
			log.Fatal(err)
		}
		if m == governor.LowLatency {
			// Low-latency re-pins every worker and spins them.
			a := pollActive(p, 3*time.Second, func(a int) bool { return a == workers })
			check(a == workers, "low-latency left %d/%d workers active", a, workers)
		}
		fmt.Printf("mode %-12s -> %s\n", m, p.ModeString())
	}

	// Residency: the paper's Fig. 11/12 series, per worker.
	if snap := p.DebugSnapshot(); snap.Governor != nil {
		fmt.Printf("\ntransitions=%d trickled=%d\n", snap.Governor.Transitions, trickled.Load())
		for _, w := range snap.Workers {
			fmt.Printf("worker %d: active=%-5v park_seconds=%.3f\n", w.Worker, w.Active, w.ParkSeconds)
		}
	}

	stop.Store(true)
	wg.Wait()
	if err := p.Stop(); err != nil {
		log.Fatal(err)
	}

	if failures > 0 {
		if runtime.GOMAXPROCS(0) < 2 {
			// No parallelism to take away or give back on this host; the
			// bench suite records the same condition as a scaling_note.
			fmt.Printf("\nscaling_note: single-core host, %d elastic assertion(s) reported but not fatal\n", failures)
			return
		}
		if *smoke {
			os.Exit(1)
		}
	}
	fmt.Println("\nok: shrank at trickle, recovered on burst, switched modes live")
}

// pollActive samples ActiveWorkers until pred holds or the deadline
// lapses, returning the last observation either way.
func pollActive(p *dataplane.Plane, d time.Duration, pred func(int) bool) int {
	deadline := time.Now().Add(d)
	for {
		a := p.ActiveWorkers()
		if pred(a) || time.Now().After(deadline) {
			return a
		}
		time.Sleep(time.Millisecond)
	}
}

func statusLine(p *dataplane.Plane) string {
	st, ok := p.GovernorStatus()
	if !ok {
		return "disabled"
	}
	return fmt.Sprintf("mode=%s wait=%s batch=%d transitions=%d reason=%q",
		st.Mode, st.Wait, st.MaxBatch, st.Transitions, st.Reason)
}

// Full plane: the complete Fig. 2 architecture from the paper, running for
// real — an emulated NIC ingresses request frames for many tenants, data
// plane workers are QWAIT-notified, classify each request with the
// dispatching kernel, and deliver responses to tenant-side queues whose
// consumers block on their own doorbells.
//
// Run with: go run ./examples/full-plane
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/dispatch"
)

const (
	tenants   = 12
	workers   = 3
	perTenant = 200
)

func main() {
	// The transport handler: parse + classify + route each RPC frame,
	// returning a tiny response descriptor.
	d := dispatch.NewDispatcher()
	d.AddBackend("cache", "cache-0")
	d.AddBackend("cache", "cache-1")
	d.AddBackend("search", "search-0")
	d.AddBackend("ml", "ml-0")
	var mu sync.Mutex // dispatcher is single-threaded; workers share it

	plane, err := dataplane.New(dataplane.Config{
		Tenants: tenants,
		Workers: workers,
		Handler: func(tenant int, frame []byte) ([]byte, error) {
			mu.Lock()
			defer mu.Unlock()
			disp, err := d.Prepare(frame)
			if err != nil {
				return nil, err
			}
			d.Complete(disp.Tier, disp.Backend)
			return []byte(disp.Tier + "/" + disp.Backend), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	plane.Start()

	start := time.Now()
	var wg sync.WaitGroup

	// Emulated NIC: per-tenant producers emitting bursts through the
	// batched DMA path. Frames are staged locally, then one IngressBatch
	// call pushes the whole burst and rings each worker's doorbell once
	// (NotifyBatch), instead of one wakeup per frame. The device rings
	// (default capacity 1024) hold a full tenant's worth of frames, so
	// bursts are never partially dropped here.
	const burst = 25
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			batch := make([]dataplane.IngressItem, 0, burst)
			for i := 0; i < perTenant; i++ {
				req := dispatch.Request{
					Type:      dispatch.RequestType(i % 4),
					Tenant:    uint32(tn),
					RequestID: uint64(tn)<<32 | uint64(i),
					Payload:   []byte("body"),
				}
				batch = append(batch, dataplane.IngressItem{
					Tenant:  tn,
					Payload: req.Marshal(nil),
				})
				if len(batch) == burst || i == perTenant-1 {
					if n := plane.IngressBatch(batch); n != len(batch) {
						log.Fatalf("tenant %d: burst dropped %d frames", tn, len(batch)-n)
					}
					batch = batch[:0]
				}
			}
		}(tn)
	}

	// Tenant cores: block on their own delivery doorbells.
	var responses atomic.Int64
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				if _, ok := plane.EgressWait(tn); !ok {
					return
				}
				responses.Add(1)
			}
		}(tn)
	}

	wg.Wait()
	elapsed := time.Since(start)
	st := plane.Stats()
	plane.Stop()

	fmt.Printf("full plane: %d tenants, %d workers (%s mode)\n",
		tenants, workers, plane.Mode())
	fmt.Printf("  ingressed  %d\n", st.Ingressed)
	fmt.Printf("  processed  %d (errors %d)\n", st.Processed, st.Errors)
	fmt.Printf("  responses  %d in %v (%.0f k req/s)\n",
		responses.Load(), elapsed.Round(time.Millisecond),
		float64(responses.Load())/elapsed.Seconds()/1e3)
	if responses.Load() != tenants*perTenant {
		log.Fatalf("lost responses: %d != %d", responses.Load(), tenants*perTenant)
	}
	fmt.Println("  all responses accounted for")
}

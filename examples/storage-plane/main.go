// Storage plane: a storage-virtualization data plane combining the
// notification runtime with the paper's two storage kernels — Cauchy
// Reed-Solomon erasure coding and RAID-6 P+Q protection — plus AES-CBC-256
// encryption at rest.
//
// Write requests from tenants arrive on per-tenant queues. A strict-
// priority policy gives the metadata queue (QID 0) precedence over bulk
// data queues. Each write is encrypted, split into 4+2 erasure-coded
// shards, and its stripe parities verified; a simulated device failure then
// exercises reconstruction.
//
// Run with: go run ./examples/storage-plane
package main

import (
	"bytes"
	"fmt"
	"log"

	"hyperplane"
	"hyperplane/internal/cryptofwd"
	"hyperplane/internal/erasure"
	"hyperplane/internal/raidp"
)

type writeReq struct {
	tenant string
	key    string
	data   []byte
	meta   bool
}

func main() {
	n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{
		MaxQueues: 8,
		Policy:    hyperplane.StrictPriority, // QID 0 = metadata first
	})
	if err != nil {
		log.Fatal(err)
	}
	mux := hyperplane.NewMux[writeReq](n)

	metaQ, err := mux.Add(64) // registers first -> QID 0, highest priority
	if err != nil {
		log.Fatal(err)
	}
	bulkQ, err := mux.Add(64)
	if err != nil {
		log.Fatal(err)
	}

	fwd, err := cryptofwd.NewForwarder([]byte("storage-plane master secret"))
	if err != nil {
		log.Fatal(err)
	}
	code, err := erasure.NewCode(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	raid, err := raidp.New(4)
	if err != nil {
		log.Fatal(err)
	}

	// Enqueue bulk writes first, then metadata: strict priority must still
	// drain metadata first.
	for i := 0; i < 6; i++ {
		bulkQ.Push(writeReq{
			tenant: "tenant-b",
			key:    fmt.Sprintf("obj/%04d", i),
			data:   bytes.Repeat([]byte{byte(i + 1)}, 1024+i*257),
		})
	}
	for i := 0; i < 3; i++ {
		metaQ.Push(writeReq{
			tenant: "tenant-a",
			key:    fmt.Sprintf("meta/%d", i),
			data:   []byte(fmt.Sprintf(`{"inode":%d,"size":%d}`, i, i*4096)),
			meta:   true,
		})
	}

	var order []string
	stored := 0
	mux.Serve(func(qid hyperplane.QID, req writeReq) bool {
		// 1. Encrypt at rest (per-tenant flow key).
		flow := uint64(len(req.tenant))
		sealed, err := fwd.Seal(flow, req.data)
		if err != nil {
			log.Fatal(err)
		}

		// 2. Erasure-code into 4 data + 2 parity shards.
		shards := code.Split(sealed)
		if err := code.Encode(shards); err != nil {
			log.Fatal(err)
		}

		// 3. RAID-6 stripe parity across the 4 data shards.
		p := make([]byte, len(shards[0]))
		q := make([]byte, len(shards[0]))
		if err := raid.ComputePQ(shards[:4], p, q); err != nil {
			log.Fatal(err)
		}

		// 4. Simulate losing two devices and recover both ways.
		lost := shards[1]
		shards[1] = nil
		shards[4] = nil
		if err := code.Reconstruct(shards); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(shards[1], lost) {
			log.Fatal("erasure reconstruction mismatch")
		}
		data := [][]byte{shards[0], shards[1], shards[2], shards[3]}
		saved := data[2]
		data[2] = nil
		if err := raid.RecoverOneData(data, p, 2); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(data[2], saved) {
			log.Fatal("RAID reconstruction mismatch")
		}

		// 5. Decrypt and verify end-to-end.
		joined, err := code.Join(shards, len(sealed))
		if err != nil {
			log.Fatal(err)
		}
		plain, err := fwd.Open(flow, joined)
		if err != nil || !bytes.Equal(plain, req.data) {
			log.Fatal("end-to-end data mismatch")
		}

		order = append(order, req.key)
		stored++
		fmt.Printf("stored %-10s (%4d bytes -> %d shards of %d bytes, P+Q verified)\n",
			req.key, len(req.data), len(shards), len(shards[0]))
		return stored < 9
	})
	n.Close()

	// Strict priority: the three metadata writes must precede all bulk
	// writes even though they were enqueued last.
	fmt.Println("\nservice order:", order)
	for i := 0; i < 3; i++ {
		if order[i][:5] != "meta/" {
			log.Fatalf("strict priority violated: %v", order)
		}
	}
	fmt.Println("strict-priority metadata-first ordering verified")
}

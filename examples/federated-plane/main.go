// Federated plane: three dataplane nodes as one logical plane.
//
// Three in-process nodes, each running its own data plane, federate
// over loopback TCP: a consistent-hash ring shards the tenants across
// them, and ingress at any node routes to the owner — locally when the
// entry node owns the tenant, over the CRC-framed node bridge
// otherwise. This is the paper's scale-out story applied across
// processes: each node is a super-bank, the bridge is a remote
// doorbell, and tenant placement is just hashing.
//
// The demo then exercises the two federation lifecycle events:
//
//   - graceful handoff: one tenant migrates between nodes with its
//     dedup window (drain, state transfer, ownership flip) while
//     producers keep sending — nothing is double-delivered;
//   - node death: one node is killed mid-traffic; the survivors'
//     health probes notice, the dead node's tenants re-home onto the
//     remaining ring, and traffic keeps flowing — messages acked
//     before the kill stay delivered at most once.
//
// Run with: go run ./examples/federated-plane
// -smoke exits non-zero unless re-homing converges and the
// exactly-once checks hold (used by `make fed-smoke` and CI).
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/cluster"
)

const (
	tenants  = 24
	nNodes   = 3
	perPhase = 400 // messages per producer per phase
)

// member is one federation participant: a counting plane plus its node.
type member struct {
	name  string
	node  *cluster.Node
	plane *dataplane.Plane

	mu  sync.Mutex
	got map[uint64]int // msgID -> deliveries on this plane
}

func (m *member) deliveries(id uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.got[id]
}

func newMember(name string) *member {
	m := &member{name: name, got: make(map[uint64]int)}
	plane, err := dataplane.New(dataplane.Config{
		Tenants:      tenants,
		Workers:      2,
		RingCapacity: 1 << 13,
		Mode:         dataplane.Notify,
		OnDeliver: func(_ int, payload []byte, _ uint64) {
			if len(payload) == 8 {
				id := binary.LittleEndian.Uint64(payload)
				m.mu.Lock()
				m.got[id]++
				m.mu.Unlock()
			}
		},
		Handler: func(_ int, payload []byte) ([]byte, error) { return payload, nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	plane.Start()
	node, err := cluster.NewNode(cluster.Config{
		ID:             name,
		Plane:          plane,
		FlushBatch:     16,
		FlushInterval:  200 * time.Microsecond,
		ForwardBuffer:  1 << 12,
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		DeadAfter:      500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}
	m.node = node
	m.plane = plane
	return m
}

func payloadFor(id uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], id)
	return b[:]
}

// produce sends n ids through random entry nodes, each id twice (the
// exactly-once probe), and returns the ids that were accepted.
func produce(entries []*member, idGen *atomic.Uint64, rng *rand.Rand, n int) []uint64 {
	ids := make([]uint64, 0, n)
	for len(ids) < n {
		id := idGen.Add(1)
		tenant := rng.Intn(tenants)
		okA := entries[rng.Intn(len(entries))].node.Ingress(tenant, id, payloadFor(id))
		okB := entries[rng.Intn(len(entries))].node.Ingress(tenant, id, payloadFor(id))
		if okA || okB {
			ids = append(ids, id)
		}
	}
	return ids
}

func main() {
	smoke := flag.Bool("smoke", false, "exit non-zero unless all federation checks pass")
	flag.Parse()
	fail := func(format string, args ...any) {
		if *smoke {
			log.Fatalf("FAIL: "+format, args...)
		}
		log.Printf("unexpected: "+format, args...)
	}

	members := make([]*member, nNodes)
	for i := range members {
		members[i] = newMember(fmt.Sprintf("node-%c", 'a'+i))
	}
	for _, a := range members {
		for _, b := range members {
			if a != b {
				if err := a.node.AddPeer(cluster.PeerSpec{ID: b.name, Addr: b.node.Addr()}); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Printf("== %d nodes federated; tenant shards: ", nNodes)
	counts := map[string]int{}
	for t := 0; t < tenants; t++ {
		counts[members[0].node.Owner(t)]++
	}
	for _, m := range members {
		fmt.Printf("%s=%d ", m.name, counts[m.name])
	}
	fmt.Println()

	var idGen atomic.Uint64
	rng := rand.New(rand.NewSource(1))

	// Phase 1: traffic through every node; each id sent twice.
	phase1 := produce(members, &idGen, rng, perPhase)
	fmt.Printf("== phase 1: %d ids accepted through all %d nodes (each sent twice)\n", len(phase1), nNodes)

	// Graceful handoff: migrate one tenant a -> b under its own name.
	a, b := members[0], members[1]
	ht := -1
	for t := 0; t < tenants; t++ {
		if a.node.Owner(t) == a.name {
			ht = t
			break
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t0 := time.Now()
	err := a.node.Handoff(ctx, ht, b.name)
	cancel()
	if err != nil {
		fail("handoff of tenant %d: %v", ht, err)
	}
	fmt.Printf("== handoff: tenant %d moved %s -> %s in %s (dedup window traveled along)\n",
		ht, a.name, b.name, time.Since(t0).Round(time.Microsecond))

	// Node death: kill the third node mid-traffic.
	victim := members[2]
	done := make(chan []uint64, 1)
	go func() {
		r := rand.New(rand.NewSource(2))
		done <- produce(members[:2], &idGen, r, perPhase)
	}()
	time.Sleep(5 * time.Millisecond)
	victim.node.Kill()
	victim.plane.Stop()
	fmt.Printf("== %s killed mid-traffic\n", victim.name)
	phase2 := <-done

	// Survivors converge on a two-member ring and agree on ownership.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if len(a.node.Members()) == 2 && len(b.node.Members()) == 2 {
			break
		}
		if time.Now().After(deadline) {
			fail("survivors did not converge: %v / %v", a.node.Members(), b.node.Members())
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	rehomed := 0
	for t := 0; t < tenants; t++ {
		oa, ob := a.node.Owner(t), b.node.Owner(t)
		if oa != ob {
			fail("tenant %d ownership split: %s vs %s", t, oa, ob)
		}
		if oa == victim.name {
			fail("tenant %d still owned by the dead node", t)
		}
	}
	for name, n := range counts {
		if name == victim.name {
			rehomed = n
		}
	}
	fmt.Printf("== survivors converged: %d tenants re-homed off %s, ring now %v\n",
		rehomed, victim.name, a.node.Members())

	// Phase 3: traffic through the survivors only — and every id must
	// land exactly once even though each was sent twice.
	phase3 := produce(members[:2], &idGen, rng, perPhase)
	settleDeadline := time.Now().Add(20 * time.Second)
	for {
		missing := 0
		for _, id := range phase3 {
			if a.deliveries(id)+b.deliveries(id) < 1 {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(settleDeadline) {
			fail("%d of %d post-failure ids not delivered", missing, len(phase3))
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let stragglers land before the dup sweep
	dupes := 0
	for _, ids := range [][]uint64{phase1, phase2, phase3} {
		for _, id := range ids {
			if n := a.deliveries(id) + b.deliveries(id); n > 1 {
				dupes++
			}
		}
	}
	if dupes > 0 {
		fail("%d ids delivered more than once on the survivors", dupes)
	}
	fmt.Printf("== exactly-once held: %d ids checked across 3 phases, 0 duplicates on the survivors\n",
		len(phase1)+len(phase2)+len(phase3))

	for _, m := range members[:2] {
		cm := m.node.Metrics()
		fmt.Printf("   %s: forwarded=%d received=%d deduped=%d rehomed=%d peer_downs=%d\n",
			m.name, cm.Forwarded.Load(), cm.ReceivedItems.Load(),
			cm.RecvDeduped.Load(), cm.Rehomed.Load(), cm.PeerDowns.Load())
	}
	a.node.Stop()
	b.node.Stop()
	a.plane.Stop()
	b.plane.Stop()
	if *smoke {
		fmt.Println("fed-smoke: all federation checks passed")
	}
	os.Exit(0)
}

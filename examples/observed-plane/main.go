// Observed plane: the telemetry plane end to end — a running dataplane
// with live /metrics, /debug/tenants, and /debug/trace endpoints.
//
// Eight tenants flood a two-worker plane while one tenant's handler fails
// every item until it is quarantined. A telemetry plane samples
// notification latency (doorbell ring to handler dispatch) into
// per-tenant histograms and a trace ring, and telemetry.Serve exports
// everything over HTTP:
//
//	go run ./examples/observed-plane -addr :9090 -duration 60s
//	curl localhost:9090/metrics          # Prometheus text exposition
//	curl localhost:9090/debug/tenants    # JSON: quarantine, backlogs, policy state
//	curl localhost:9090/debug/trace      # binary span ring (telemetry.ReadTrace)
//	go tool pprof localhost:9090/debug/pprof/profile
//
// -smoke runs the same plane briefly, scrapes its own endpoints, and
// exits nonzero if any expected series or span is missing — the CI check
// that the export plane actually exports.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/telemetry"
)

const (
	tenants = 8
	workers = 2
	badOne  = 7 // this tenant's handler always fails -> quarantined
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "telemetry listen address")
	duration := flag.Duration("duration", 10*time.Second, "how long to run the plane")
	smoke := flag.Bool("smoke", false, "CI mode: run briefly, self-scrape the endpoints, verify, exit")
	flag.Parse()
	if *smoke {
		*addr = "127.0.0.1:0" // don't collide with anything in CI
		*duration = 2 * time.Second
	}

	tel, err := telemetry.New(telemetry.Config{
		Tenants:     tenants,
		Workers:     workers,
		SampleEvery: 16, // denser than the 1/64 default so short runs show spans
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := dataplane.New(dataplane.Config{
		Tenants:   tenants,
		Workers:   workers,
		Mode:      dataplane.Notify,
		Delivery:  dataplane.DropNewest,
		Telemetry: tel,
		Quarantine: dataplane.QuarantineConfig{
			Threshold: 3,
			Backoff:   time.Hour, // stays visibly quarantined for the whole run
		},
		Handler: func(tenant int, payload []byte) ([]byte, error) {
			if tenant == badOne {
				return nil, errors.New("misbehaving tenant")
			}
			return payload, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	srv, err := telemetry.Serve(*addr, tel)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("telemetry: http://%s/metrics\n", srv.Addr())

	p.Start()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) { // producer
			defer wg.Done()
			payload := []byte{byte(tn)}
			for !stop.Load() {
				if !p.Ingress(tn, payload) {
					time.Sleep(10 * time.Microsecond)
				}
			}
		}(tn)
		wg.Add(1)
		go func(tn int) { // tenant-side consumer
			defer wg.Done()
			for !stop.Load() {
				if _, ok := p.Egress(tn); !ok {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(tn)
	}

	if *smoke {
		time.Sleep(*duration)
		err := verify(srv.Addr())
		stop.Store(true)
		p.Stop()
		wg.Wait()
		if err != nil {
			fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke: ok")
		return
	}

	// Interactive run: print a one-line summary every second.
	for end := time.Now().Add(*duration); time.Now().Before(end); {
		time.Sleep(time.Second)
		st := p.Stats()
		lat := tel.TenantLatency(0).Summary()
		fmt.Printf("processed=%d errors=%d quarantined=%d  tenant0 notify p50=%s p99=%s (%d spans)\n",
			st.Processed, st.Errors, st.Quarantined,
			time.Duration(lat.P50), time.Duration(lat.P99), lat.Count)
	}
	stop.Store(true)
	p.Stop()
	wg.Wait()
}

// verify scrapes the export plane the way CI does and checks that every
// advertised surface is live: the Prometheus series, the JSON debug
// snapshot (with the quarantined tenant visible), and the binary trace.
func verify(addr string) error {
	get := func(path string) ([]byte, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: status %s", path, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}

	metrics, err := get("/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		`hyperplane_notify_latency_seconds{tenant="0",quantile="0.5"}`,
		`hyperplane_notify_latency_seconds{tenant="0",quantile="0.99"}`,
		`hyperplane_notify_latency_seconds{tenant="0",quantile="0.999"}`,
		`hyperplane_processed_total{tenant="0"}`,
		fmt.Sprintf(`hyperplane_handler_errors_total{tenant="%d"}`, badOne),
		"hyperplane_quarantined_tenants 1",
		`hyperplane_bank_selects_total{worker="0",bank="0"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}

	raw, err := get("/debug/tenants")
	if err != nil {
		return err
	}
	var snap telemetry.DebugSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("/debug/tenants: %v", err)
	}
	if len(snap.Tenants) != tenants {
		return fmt.Errorf("/debug/tenants has %d tenants, want %d", len(snap.Tenants), tenants)
	}
	if got := snap.Tenants[badOne].State; got != "quarantined" {
		return fmt.Errorf("tenant %d state = %q, want quarantined", badOne, got)
	}
	if snap.Tenants[0].Latency.Count == 0 {
		return errors.New("tenant 0 recorded no notification spans")
	}

	trace, err := get("/debug/trace")
	if err != nil {
		return err
	}
	spans, err := telemetry.ReadTrace(bytes.NewReader(trace))
	if err != nil {
		return fmt.Errorf("/debug/trace: %v", err)
	}
	if len(spans) == 0 {
		return errors.New("/debug/trace returned no spans")
	}
	for _, s := range spans {
		if s.Latency < 0 || s.Tenant < 0 || int(s.Tenant) >= tenants {
			return fmt.Errorf("implausible span %+v", s)
		}
	}
	fmt.Printf("smoke: %d metrics bytes, %d debug tenants, %d trace spans\n",
		len(metrics), len(snap.Tenants), len(spans))
	return nil
}

// Simulate: drive the paper's evaluation platform through the public API.
//
// Runs a small head-to-head between the spinning data plane and HyperPlane
// at growing queue counts (the essence of Figs. 8 and 9), then prints one
// regenerated paper figure.
//
// Run with: go run ./examples/simulate
package main

import (
	"fmt"
	"log"
	"time"

	"hyperplane"
)

func main() {
	fmt.Println("Peak throughput, single-queue (SQ) traffic, single core:")
	fmt.Printf("%8s %14s %14s %9s\n", "queues", "spinning M/s", "hyperplane M/s", "speedup")
	for _, queues := range []int{8, 64, 256, 512} {
		var thr [2]float64
		for i, plane := range []hyperplane.Plane{hyperplane.PlaneSpinning, hyperplane.PlaneHyperPlane} {
			r, err := hyperplane.Simulate(hyperplane.SimConfig{
				Plane:    plane,
				Shape:    hyperplane.SingleQueue,
				Queues:   queues,
				Saturate: true,
				Duration: 5 * time.Millisecond,
				Seed:     7,
			})
			if err != nil {
				log.Fatal(err)
			}
			thr[i] = r.ThroughputMTasks
		}
		fmt.Printf("%8d %14.3f %14.3f %8.1fx\n", queues, thr[0], thr[1], thr[1]/thr[0])
	}

	fmt.Println("\nZero-load latency, 256 queues, fully balanced traffic:")
	for _, plane := range []hyperplane.Plane{hyperplane.PlaneSpinning, hyperplane.PlaneHyperPlane} {
		r, err := hyperplane.Simulate(hyperplane.SimConfig{
			Plane:    plane,
			Shape:    hyperplane.FullyBalanced,
			Queues:   256,
			Load:     0.01,
			Duration: 60 * time.Millisecond,
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s avg %8v   p99 %8v\n", plane, r.AvgLatency, r.P99Latency)
	}

	fmt.Println("\nRegenerating paper Table I:")
	figs, err := hyperplane.ReproduceFigure("table1", true, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(figs[0].Text)
}

// NFV pipeline: a miniature software data plane combining the HyperPlane
// notification runtime with two real packet-processing kernels from the
// paper's evaluation — GRE encapsulation (IPv4-in-IPv6 tunneling) and
// 5-tuple packet steering with session affinity.
//
// Two tenants feed IPv4 packets through shared-memory queues with different
// weighted-round-robin service weights (a premium tenant gets 3x the
// service share). The data plane goroutine QWAITs for ready queues,
// encapsulates each packet for its tenant's tunnel, and steers the result
// to a worker by flow.
//
// Run with: go run ./examples/nfv-pipeline
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"hyperplane"
	"hyperplane/internal/netproto"
	"hyperplane/internal/steering"
)

const (
	premiumWeight  = 3
	standardWeight = 1
	packetsEach    = 60
)

func makePacket(flow int, seq int) []byte {
	payload := make([]byte, 8)
	binary.BigEndian.PutUint16(payload[0:], uint16(10000+flow)) // src port
	binary.BigEndian.PutUint16(payload[2:], 443)                // dst port
	binary.BigEndian.PutUint32(payload[4:], uint32(seq))
	h := netproto.IPv4Header{
		TotalLen: uint16(netproto.IPv4HeaderLen + len(payload)),
		ID:       uint16(seq),
		TTL:      64,
		Protocol: netproto.ProtoTCP,
		Src:      [4]byte{10, 0, 0, byte(flow)},
		Dst:      [4]byte{192, 168, 1, 1},
	}
	return append(h.Marshal(nil), payload...)
}

func main() {
	// Weighted round-robin: QID 0 (premium) gets weight 3, QID 1 weight 1.
	weights := make([]int, 8)
	for i := range weights {
		weights[i] = standardWeight
	}
	weights[0] = premiumWeight

	n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{
		MaxQueues: 8,
		Policy:    hyperplane.WeightedRoundRobin,
		Weights:   weights,
	})
	if err != nil {
		log.Fatal(err)
	}
	mux := hyperplane.NewMux[[]byte](n)

	type tenant struct {
		name   string
		queue  *hyperplane.Queue[[]byte]
		tunnel *netproto.Tunnel
	}
	mkTunnel := func(id byte) *netproto.Tunnel {
		var src, dst [16]byte
		src[0], src[15] = 0xfd, id
		dst[0], dst[15] = 0xfd, 0xff
		return netproto.NewTunnel(src, dst)
	}
	tenants := make([]*tenant, 2)
	for i, name := range []string{"premium", "standard"} {
		q, err := mux.Add(256)
		if err != nil {
			log.Fatal(err)
		}
		tenants[i] = &tenant{name: name, queue: q, tunnel: mkTunnel(byte(i + 1))}
	}
	byQID := map[hyperplane.QID]*tenant{}
	for _, tn := range tenants {
		byQID[tn.queue.QID()] = tn
	}

	steerer, err := steering.NewSteerer([]string{"worker-a", "worker-b", "worker-c"}, 128)
	if err != nil {
		log.Fatal(err)
	}

	// Data plane: encapsulate + steer each packet.
	counts := map[string]int{}
	steered := map[string]int{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		total := 0
		mux.Serve(func(qid hyperplane.QID, pkt []byte) bool {
			tn := byQID[qid]
			wire, err := tn.tunnel.Encap(pkt)
			if err != nil {
				log.Fatalf("encap: %v", err)
			}
			inner, err := netproto.Decap(wire) // sanity: tunnel round-trips
			if err != nil {
				log.Fatalf("decap: %v", err)
			}
			worker, err := steerer.SteerPacket(inner)
			if err != nil {
				log.Fatalf("steer: %v", err)
			}
			counts[tn.name]++
			steered[worker]++
			total++
			return total < 2*packetsEach
		})
	}()

	// Tenants produce concurrently.
	var wg sync.WaitGroup
	for i, tn := range tenants {
		wg.Add(1)
		go func(id int, tn *tenant) {
			defer wg.Done()
			for seq := 0; seq < packetsEach; seq++ {
				flow := id*8 + seq%4 // 4 flows per tenant
				for !tn.queue.Push(makePacket(flow, seq)) {
				}
			}
		}(i, tn)
	}
	wg.Wait()
	<-done
	n.Close()

	fmt.Println("NFV pipeline processed packets:")
	for _, tn := range tenants {
		fmt.Printf("  tenant %-9s %3d packets (WRR weight %d)\n",
			tn.name, counts[tn.name], weights[tn.queue.QID()])
	}
	fmt.Println("steered to workers (session affinity by 5-tuple):")
	for _, w := range steerer.Workers() {
		fmt.Printf("  %-9s %3d packets\n", w, steered[w])
	}
	hits, misses, _ := steerer.Stats()
	fmt.Printf("affinity table: %d hits, %d misses (%d live sessions)\n",
		hits, misses, steerer.Sessions())
}

// Quickstart: the HyperPlane notification runtime in ~50 lines.
//
// Three tenants produce messages into their own queues; one data plane
// goroutine blocks in Wait (the QWAIT instruction) and services whichever
// queue has work — no spin-polling over empty queues.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"hyperplane"
)

func main() {
	n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{
		MaxQueues: 16,
		Policy:    hyperplane.RoundRobin,
	})
	if err != nil {
		log.Fatal(err)
	}

	mux := hyperplane.NewMux[string](n)
	tenants := []string{"alice", "bob", "carol"}
	queues := make(map[hyperplane.QID]string)
	var wg sync.WaitGroup

	for _, tenant := range tenants {
		q, err := mux.Add(64)
		if err != nil {
			log.Fatal(err)
		}
		queues[q.QID()] = tenant

		// Producer: bursty tenant traffic. The opening burst goes through
		// PushBatch — one doorbell ring for three messages — then the tail
		// trickles in one Push at a time.
		wg.Add(1)
		go func(tenant string, q *hyperplane.Queue[string]) {
			defer wg.Done()
			burst := make([]string, 3)
			for i := range burst {
				burst[i] = fmt.Sprintf("%s's message #%d", tenant, i)
			}
			q.PushBatch(burst)
			for i := len(burst); i < 5; i++ {
				time.Sleep(time.Duration(10+len(tenant)) * time.Millisecond)
				q.Push(fmt.Sprintf("%s's message #%d", tenant, i))
			}
		}(tenant, q)
	}

	// Data plane core: the QWAIT loop. Serve handles Wait / Verify /
	// Reconsider for us and invokes the handler per item.
	done := make(chan struct{})
	go func() {
		defer close(done)
		total := 0
		mux.Serve(func(qid hyperplane.QID, msg string) bool {
			fmt.Printf("[queue %d / %s] %s\n", qid, queues[qid], msg)
			total++
			return total < len(tenants)*5
		})
	}()

	wg.Wait()
	<-done
	n.Close()

	st := n.Stats()
	fmt.Printf("\nnotifier stats: %d notifies, %d activations, %d waits (%d blocked), %d spurious\n",
		st.Notifies, st.Activations, st.Waits, st.Blocked, st.Spurious)
}

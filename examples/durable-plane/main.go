// Durable plane: the WAL-backed tier end to end in one sitting.
//
// A two-tenant plane runs with Config.Durable pointing at a scratch
// directory. Act 1 admits identified messages (including a duplicate
// retry, which the dedup window rejects), consumes some of them, and
// exits WITHOUT consuming the rest — then reopens the same directory
// and watches recovery replay exactly the unconsumed messages. Act 2
// breaks tenant 1's handler so its items land in the dead-letter queue,
// and drains the DLQ the way an operator would.
//
// Run with: go run ./examples/durable-plane
// CI runs:  go run ./examples/durable-plane -smoke
// (same program; -smoke exits non-zero if any invariant fails)
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hyperplane/dataplane"
)

func main() {
	smoke := flag.Bool("smoke", false, "exit non-zero if any durability invariant fails (CI mode)")
	flag.Parse()
	_ = smoke // failures always log.Fatal; the flag documents intent

	dir, err := os.MkdirTemp("", "durable-plane-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := func(handler dataplane.Handler) dataplane.Config {
		return dataplane.Config{
			Tenants: 2,
			Workers: 1,
			Handler: handler,
			Durable: dataplane.DurableConfig{
				Dir:        dir,
				FsyncEvery: 2 * time.Millisecond,
			},
		}
	}

	// Act 1: admit, dedup, consume half, crash (well: exit), recover.
	p, err := dataplane.New(cfg(nil))
	if err != nil {
		log.Fatal(err)
	}
	p.Start()
	for id := uint64(1); id <= 10; id++ {
		if st := p.IngressID(0, id, payload(id)); st != dataplane.IngressAccepted {
			log.Fatalf("IngressID(%d) = %v", id, st)
		}
	}
	if st := p.IngressID(0, 3, payload(3)); st != dataplane.IngressDuplicate {
		log.Fatalf("retry of id 3 = %v, want duplicate", st)
	}
	fmt.Println("admitted ids 1..10 for tenant 0; retry of id 3 rejected by the dedup window")
	drain(p)
	for i := 0; i < 4; i++ {
		if _, ok := p.Egress(0); !ok {
			log.Fatal("egress came up short")
		}
	}
	if err := p.WALSync(); err != nil { // persist the 4 acks
		log.Fatal(err)
	}
	ws := p.WALStats()
	fmt.Printf("consumed 4 of 10; WAL: %d appends, %d fsyncs, %d bytes\n",
		ws.Appends, ws.Fsyncs, ws.AppendedBytes)
	if err := p.Stop(); err != nil {
		log.Fatal(err)
	}

	p, err = dataplane.New(cfg(nil))
	if err != nil {
		log.Fatal(err)
	}
	p.Start()
	drain(p)
	var replayed []uint64
	for {
		out, ok := p.Egress(0)
		if !ok {
			break
		}
		replayed = append(replayed, binary.LittleEndian.Uint64(out))
	}
	fmt.Printf("recovery replayed ids %v (Stats.Replayed=%d)\n", replayed, p.Stats().Replayed)
	if len(replayed) != 6 || replayed[0] != 5 {
		log.Fatalf("expected ids 5..10 to replay, got %v", replayed)
	}
	if st := p.IngressID(0, 7, payload(7)); st != dataplane.IngressDuplicate {
		log.Fatalf("dedup window did not survive recovery: retry of id 7 = %v", st)
	}
	fmt.Println("dedup window survived recovery: retry of id 7 rejected")
	if err := p.Stop(); err != nil {
		log.Fatal(err)
	}

	// Act 2: a failing handler dead-letters instead of losing items.
	p, err = dataplane.New(cfg(func(tenant int, b []byte) ([]byte, error) {
		if tenant == 1 {
			return nil, fmt.Errorf("tenant 1 handler is broken")
		}
		return b, nil
	}))
	if err != nil {
		log.Fatal(err)
	}
	p.Start()
	for id := uint64(1); id <= 3; id++ {
		if st := p.IngressID(1, id, payload(id)); st != dataplane.IngressAccepted {
			log.Fatalf("IngressID(1, %d) = %v", id, st)
		}
	}
	drain(p)
	if d := p.DLQDepth(1); d != 3 {
		log.Fatalf("DLQ depth = %d, want 3", d)
	}
	for _, e := range p.DrainDLQ(1, 0) {
		fmt.Printf("dead letter: tenant=%d msg_id=%d reason=%s\n", e.Tenant, e.MsgID, e.Reason)
	}
	if err := p.Stop(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok: admission implied delivery — consumed, replayed, or dead-lettered; nothing lost")
}

func payload(id uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, id)
	return b
}

func drain(p *dataplane.Plane) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		log.Fatal(err)
	}
}

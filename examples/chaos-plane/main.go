// Chaos plane: the fault-tolerance layer in ~100 lines.
//
// Eight tenants flood a two-worker data plane. Two tenants are injected
// with a handler that panics on every item (via internal/fault). Watch the
// plane absorb it: panics are recovered, the faulty tenants are quarantined
// (the paper's QWAIT-DISABLE — readiness keeps accruing but the worker
// stops burning cycles on them), and healthy tenants keep their
// throughput. Then the fault clears, a quarantine probe succeeds, and the
// tenants rejoin.
//
// Run with: go run ./examples/chaos-plane
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/fault"
)

const (
	tenants = 8
	faulty  = 2 // tenants 0 and 1 panic on every item
)

func main() {
	inj, err := fault.New(fault.Config{
		Seed:       1,
		Tenants:    tenants,
		Faulty:     []int{0, 1},
		PanicEvery: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	p, err := dataplane.New(dataplane.Config{
		Tenants:  tenants,
		Workers:  2,
		Mode:     dataplane.Notify,
		Delivery: dataplane.DropNewest, // a slow consumer costs itself, not its worker
		Handler: dataplane.Handler(inj.Wrap(func(tenant int, payload []byte) ([]byte, error) {
			return payload, nil
		})),
		Quarantine: dataplane.QuarantineConfig{
			Threshold:  3, // 3 consecutive failures -> quarantine
			Backoff:    10 * time.Millisecond,
			BackoffMax: 100 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	p.Start()

	// Flood producers and draining consumers, one pair per tenant.
	var stop atomic.Bool
	var delivered [tenants]atomic.Int64
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(2)
		go func(tn int) {
			defer wg.Done()
			payload := []byte{byte(tn)}
			for !stop.Load() {
				if !p.Ingress(tn, payload) {
					time.Sleep(10 * time.Microsecond)
				}
			}
		}(tn)
		go func(tn int) {
			defer wg.Done()
			for !stop.Load() {
				if _, ok := p.Egress(tn); ok {
					delivered[tn].Add(1)
				} else {
					time.Sleep(10 * time.Microsecond)
				}
			}
		}(tn)
	}

	report := func(phase string) {
		st := p.Stats()
		var healthy, faultyDel int64
		for tn := 0; tn < tenants; tn++ {
			if tn < faulty {
				faultyDel += delivered[tn].Load()
			} else {
				healthy += delivered[tn].Load()
			}
		}
		fmt.Printf("%-22s healthy=%-9d faulty=%-6d panics=%-5d quarantined=%d restarts=%d\n",
			phase, healthy, faultyDel, st.Panics, st.Quarantined, st.Restarts)
	}

	time.Sleep(200 * time.Millisecond)
	report("under injection:")

	// The fault clears; the next quarantine probe succeeds and the
	// tenants rejoin service.
	inj.Clear()
	for p.Stats().Quarantined != 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	report("after fault cleared:")

	stop.Store(true)
	wg.Wait()
	p.Stop()

	for tn := 0; tn < faulty; tn++ {
		if delivered[tn].Load() == 0 {
			log.Fatalf("tenant %d never recovered", tn)
		}
	}
	fmt.Println("\nquarantined tenants recovered after the fault cleared")
}

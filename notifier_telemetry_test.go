package hyperplane

import (
	"sync/atomic"
	"testing"

	"hyperplane/internal/telemetry"
)

func newTelemetryNotifier(t *testing.T, sampleEvery int) (*Notifier, *telemetry.T) {
	t.Helper()
	tel, err := telemetry.New(telemetry.Config{Tenants: 4, Workers: 1, SampleEvery: sampleEvery})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNotifier(NotifierConfig{MaxQueues: 4, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	return n, tel
}

func TestNotifySamplingStampsAndTakeStamp(t *testing.T) {
	n, _ := newTelemetryNotifier(t, 1) // sample every notify
	var db atomic.Int64
	qid, err := n.Register(&db)
	if err != nil {
		t.Fatal(err)
	}
	db.Add(1)
	n.Notify(qid)
	ts := n.TakeStamp(qid)
	if ts == 0 {
		t.Fatal("sampled Notify left no stamp")
	}
	if again := n.TakeStamp(qid); again != 0 {
		t.Errorf("TakeStamp did not drain: %d", again)
	}
	// CAS-from-zero keeps the oldest stamp across notify bursts.
	n.Notify(qid)
	first := n.stamps[qid].Load()
	n.Notify(qid)
	if n.stamps[qid].Load() != first {
		t.Error("second Notify overwrote the open span's stamp")
	}
	n.Close()
}

func TestNotifySamplingPeriod(t *testing.T) {
	n, _ := newTelemetryNotifier(t, 4)
	var db atomic.Int64
	qid, err := n.Register(&db)
	if err != nil {
		t.Fatal(err)
	}
	stamped := 0
	for i := 0; i < 64; i++ {
		db.Add(1)
		n.Notify(qid)
		if ts := n.TakeStamp(qid); ts != 0 {
			stamped++
		}
	}
	if stamped != 16 {
		t.Errorf("stamped %d of 64 notifies, want 16 at SampleEvery=4", stamped)
	}
	n.Close()
}

func TestTakeStampDisabled(t *testing.T) {
	n, err := NewNotifier(NotifierConfig{MaxQueues: 2})
	if err != nil {
		t.Fatal(err)
	}
	var db atomic.Int64
	qid, _ := n.Register(&db)
	db.Add(1)
	n.Notify(qid)
	if ts := n.TakeStamp(qid); ts != 0 {
		t.Errorf("disabled notifier produced stamp %d", ts)
	}
	if n.Telemetry() != nil {
		t.Error("Telemetry() non-nil without config")
	}
	n.Close()
}

// TestNotifyZeroAllocDisabled pins the acceptance criterion: with
// telemetry disabled the record path (Notify + TakeStamp) allocates
// nothing.
func TestNotifyZeroAllocDisabled(t *testing.T) {
	n, err := NewNotifier(NotifierConfig{MaxQueues: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	var db atomic.Int64
	qid, _ := n.Register(&db)
	if a := testing.AllocsPerRun(1000, func() {
		db.Add(1)
		n.Notify(qid)
		n.TakeStamp(qid)
		if q, ok := n.TryWait(); ok {
			db.Add(-1)
			n.Consume(q)
		}
	}); a != 0 {
		t.Errorf("disabled notify path allocates %v per run, want 0", a)
	}
}

// TestNotifyZeroAllocEnabled pins the sampled path too: stamping is a
// time.Now + CAS, never an allocation.
func TestNotifyZeroAllocEnabled(t *testing.T) {
	n, _ := newTelemetryNotifier(t, 1)
	defer n.Close()
	var db atomic.Int64
	qid, _ := n.Register(&db)
	if a := testing.AllocsPerRun(1000, func() {
		db.Add(1)
		n.Notify(qid)
		n.TakeStamp(qid)
		if q, ok := n.TryWait(); ok {
			db.Add(-1)
			n.Consume(q)
		}
	}); a != 0 {
		t.Errorf("sampled notify path allocates %v per run, want 0", a)
	}
}

func TestBankStatsAndInspectPolicy(t *testing.T) {
	n, err := NewNotifier(NotifierConfig{
		MaxQueues: 8,
		Shards:    2,
		Policy:    Policy{Kind: DeficitRoundRobin.Kind, Weights: []int{8, 1, 8, 1, 8, 1, 8, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	dbs := make([]atomic.Int64, 8)
	qids := make([]QID, 8)
	for i := range qids {
		qid, err := n.Register(&dbs[i])
		if err != nil {
			t.Fatal(err)
		}
		qids[i] = qid
	}
	for _, qid := range qids {
		dbs[qid].Add(1)
		n.Notify(qid)
	}
	served := 0
	for {
		q, ok := n.TryWait()
		if !ok {
			break
		}
		dbs[q].Add(-1)
		n.Consume(q)
		served++
	}
	if served != 8 {
		t.Fatalf("served %d of 8", served)
	}

	bs := n.BankStats()
	if len(bs) != 2 {
		t.Fatalf("banks = %d", len(bs))
	}
	var selects, acts int64
	for _, b := range bs {
		selects += b.Selects
		acts += b.Activations
	}
	if selects != 8 || acts != 8 {
		t.Errorf("selects=%d activations=%d, want 8/8", selects, acts)
	}

	insp := n.InspectPolicy()
	if len(insp) != 2 {
		t.Fatalf("inspections = %d", len(insp))
	}
	for _, in := range insp {
		if in.Kind != "deficit-round-robin" && in.Kind != DeficitRoundRobin.Kind.String() {
			t.Errorf("bank %d kind = %q", in.Bank, in.Kind)
		}
		if len(in.Weights) != 4 || len(in.Deficit) != 4 || len(in.QIDs) != 4 {
			t.Fatalf("bank %d vectors: %+v", in.Bank, in)
		}
		// QIDs map local indices back to the interleaved global ids, and
		// the weights follow each queue into its bank.
		for l, q := range in.QIDs {
			if int(q)%2 != in.Bank || int(q)/2 != l {
				t.Errorf("bank %d local %d maps to qid %d", in.Bank, l, q)
			}
			want := 8
			if int(q)%2 == 1 {
				want = 1
			}
			if in.Weights[l] != want {
				t.Errorf("qid %d weight = %d, want %d", q, in.Weights[l], want)
			}
		}
	}
}

package hyperplane

import (
	"fmt"
	"time"

	"hyperplane/internal/experiments"
	"hyperplane/internal/sdp"
	"hyperplane/internal/sim"
	"hyperplane/internal/traffic"
	"hyperplane/internal/workload"
)

// Plane selects the simulated notification mechanism.
type Plane string

// Simulated plane kinds.
const (
	PlaneSpinning   Plane = "spinning"
	PlaneHyperPlane Plane = "hyperplane"
	// PlaneMWait is the MWAIT/UMWAIT-style intermediate baseline: halts
	// when all queues are empty but must still scan to find work.
	PlaneMWait Plane = "mwait"
)

// TrafficShape is one of the paper's four traffic concentration patterns.
type TrafficShape string

// Traffic shapes (paper §II-C).
const (
	FullyBalanced       TrafficShape = "FB"
	PropConcentrated    TrafficShape = "PC"
	NonPropConcentrated TrafficShape = "NC"
	SingleQueue         TrafficShape = "SQ"
)

// Workloads lists the six evaluation workload names accepted by SimConfig.
func Workloads() []string {
	out := make([]string, len(workload.All))
	for i, w := range workload.All {
		out[i] = w.Name
	}
	return out
}

// SimConfig configures one simulation run of the evaluation platform.
type SimConfig struct {
	Plane    Plane        // default: hyperplane
	Workload string       // one of Workloads(); default packet-encapsulation
	Shape    TrafficShape // default FB
	Cores    int          // default 1
	Queues   int          // default 256
	// ClusterSize groups cores sharing queues: 1 = scale-out (default),
	// Cores = full scale-up.
	ClusterSize int
	// Sockets spreads clusters over NUMA sockets (cross-socket accesses
	// and steals pay an interconnect hop). 0 or 1 = single socket.
	Sockets int
	// Policy is the service discipline spec; the simulator drives the
	// same arbitration layer as the Notifier runtime. Zero value =
	// round-robin.
	Policy Policy
	// Weights parameterizes weight-aware disciplines when Policy.Weights
	// is nil.
	Weights []int
	// Saturate measures peak throughput; otherwise Load (0,1] offers
	// Poisson arrivals at that fraction of nominal capacity.
	Saturate bool
	Load     float64
	// Burstiness > 1 makes open-loop arrivals bursty (on/off modulated)
	// with that peak-to-mean ratio.
	Burstiness       float64
	PowerOptimized   bool
	SoftwareReadySet bool
	// MonitorBanks > 1 banks the monitoring set (distributed directories).
	MonitorBanks int
	// InOrder preserves per-queue processing order (flow-stateful
	// workloads; paper §III-B).
	InOrder bool
	// WorkStealing lets HyperPlane cores fetch QIDs from remote clusters'
	// ready sets when the local one is empty.
	WorkStealing bool
	Imbalance    float64
	Duration     time.Duration // simulated measurement window; default 10ms
	Seed         uint64
	// OnTrace, when non-nil, receives every notification-protocol event
	// (kind is one of arrival/activate/qwait/spurious/dequeue/complete/
	// halt/wake; core is -1 for device-side events).
	OnTrace func(at time.Duration, kind string, core, qid int)
}

// SimResult reports a simulation run's measurements.
type SimResult struct {
	Completed        int64
	ThroughputMTasks float64

	AvgLatency time.Duration
	P50Latency time.Duration
	P99Latency time.Duration
	MaxLatency time.Duration

	UsefulIPC  float64
	UselessIPC float64
	OverallIPC float64
	AvgPowerW  float64

	SpuriousWakeups int64
	LockContention  int64
}

func (c SimConfig) internal() (sdp.Config, error) {
	out := sdp.Config{
		Cores:            c.Cores,
		Queues:           c.Queues,
		ClusterSize:      c.ClusterSize,
		Sockets:          c.Sockets,
		PowerOptimized:   c.PowerOptimized,
		SoftwareReadySet: c.SoftwareReadySet,
		MonitorBanks:     c.MonitorBanks,
		InOrder:          c.InOrder,
		WorkStealing:     c.WorkStealing,
		Imbalance:        c.Imbalance,
		Weights:          c.Weights,
		Seed:             c.Seed,
	}
	if out.Cores == 0 {
		out.Cores = 1
	}
	if out.Queues == 0 {
		out.Queues = 256
	}
	name := c.Workload
	if name == "" {
		name = workload.PacketEncap.Name
	}
	w, err := workload.ByName(name)
	if err != nil {
		return out, err
	}
	out.Workload = w

	switch c.Shape {
	case FullyBalanced, "":
		out.Shape = traffic.FB
	case PropConcentrated:
		out.Shape = traffic.PC
	case NonPropConcentrated:
		out.Shape = traffic.NC
	case SingleQueue:
		out.Shape = traffic.SQ
	default:
		return out, fmt.Errorf("hyperplane: unknown traffic shape %q", c.Shape)
	}

	switch c.Plane {
	case PlaneSpinning:
		out.Plane = sdp.Spinning
	case PlaneMWait:
		out.Plane = sdp.MWait
	case PlaneHyperPlane, "":
		out.Plane = sdp.HyperPlane
	default:
		return out, fmt.Errorf("hyperplane: unknown plane %q", c.Plane)
	}

	out.Policy = c.Policy

	if c.Saturate {
		out.Mode = sdp.Saturate
	} else {
		out.Mode = sdp.OpenLoop
		out.Load = c.Load
		if out.Load == 0 {
			out.Load = 0.5
		}
		out.Burstiness = c.Burstiness
	}
	dur := c.Duration
	if dur == 0 {
		dur = 10 * time.Millisecond
	}
	out.Duration = sim.FromSeconds(dur.Seconds())
	out.Warmup = out.Duration / 10
	if c.OnTrace != nil {
		fn := c.OnTrace
		out.Trace = func(e sdp.TraceEvent) {
			fn(time.Duration(e.At/sim.Nanosecond)*time.Nanosecond,
				e.Kind.String(), e.Core, e.QID)
		}
	}
	return out, nil
}

// Simulate runs one configuration on the simulated evaluation platform.
func Simulate(cfg SimConfig) (SimResult, error) {
	ic, err := cfg.internal()
	if err != nil {
		return SimResult{}, err
	}
	r, err := sdp.Run(ic)
	if err != nil {
		return SimResult{}, err
	}
	toDur := func(t sim.Time) time.Duration {
		return time.Duration(t / sim.Nanosecond * sim.Time(time.Nanosecond))
	}
	return SimResult{
		Completed:        r.Completed,
		ThroughputMTasks: r.ThroughputMTasks,
		AvgLatency:       toDur(r.AvgLatency),
		P50Latency:       toDur(r.P50Latency),
		P99Latency:       toDur(r.P99Latency),
		MaxLatency:       toDur(r.MaxLatency),
		UsefulIPC:        r.UsefulIPC,
		UselessIPC:       r.UselessIPC,
		OverallIPC:       r.OverallIPC,
		AvgPowerW:        r.AvgPowerW,
		SpuriousWakeups:  r.SpuriousWakeups,
		LockContention:   r.LockContention,
	}, nil
}

// Series is one plotted line of a regenerated figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is one regenerated table/figure from the paper.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
	// Text is the rendered table; CSV is machine-readable; Plot is an
	// ASCII chart for terminal inspection.
	Text string
	CSV  string
	Plot string
}

// FigureInfo describes one reproducible experiment.
type FigureInfo struct {
	ID   string
	Desc string
}

// Figures lists every reproducible table and figure.
func Figures() []FigureInfo {
	out := make([]FigureInfo, 0, len(experiments.Registry))
	for _, e := range experiments.Registry {
		out = append(out, FigureInfo{ID: e.ID, Desc: e.Desc})
	}
	return out
}

// ReproduceFigure regenerates the identified table/figure. quick trades
// sweep breadth for speed (seconds instead of minutes).
func ReproduceFigure(id string, quick bool, seed uint64) ([]Figure, error) {
	return ReproduceFigureN(id, quick, seed, 1)
}

// ReproduceFigureN is ReproduceFigure averaged over n seeds, with the
// worst-case relative standard deviation reported in the notes.
func ReproduceFigureN(id string, quick bool, seed uint64, n int) ([]Figure, error) {
	run, ok := experiments.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("hyperplane: unknown experiment %q (see Figures())", id)
	}
	if n < 1 {
		return nil, fmt.Errorf("hyperplane: replication count must be positive, got %d", n)
	}
	tabs := experiments.Replicate(run, experiments.Options{Quick: quick, Seed: seed}, n)
	out := make([]Figure, 0, len(tabs))
	for _, t := range tabs {
		f := Figure{
			ID:     t.ID,
			Title:  t.Title,
			XLabel: t.XLabel,
			YLabel: t.YLabel,
			Notes:  t.Notes,
			Text:   t.Format(),
			CSV:    t.CSV(),
			Plot:   t.Plot(64, 16),
		}
		for _, s := range t.Series {
			f.Series = append(f.Series, Series{Label: s.Label, X: s.X, Y: s.Y})
		}
		out = append(out, f)
	}
	return out, nil
}

// Benchmarks: one per paper table/figure (regenerating it on the simulated
// platform in quick mode; run cmd/hyperbench for full-fidelity sweeps) plus
// microbenchmarks of the real workload kernels and the notification
// runtime's fast paths.
package hyperplane_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hyperplane"
	"hyperplane/internal/cryptofwd"
	"hyperplane/internal/dispatch"
	"hyperplane/internal/erasure"
	"hyperplane/internal/mem"
	"hyperplane/internal/monitor"
	"hyperplane/internal/netproto"
	"hyperplane/internal/policy"
	"hyperplane/internal/queue"
	"hyperplane/internal/raidp"
	"hyperplane/internal/ready"
	"hyperplane/internal/sim"
	"hyperplane/internal/steering"
)

// --- Paper tables and figures -------------------------------------------

func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		figs, err := hyperplane.ReproduceFigure(id, true, 42)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) == 0 {
			b.Fatal("no output")
		}
	}
}

func BenchmarkTable1Config(b *testing.B) { benchFigure(b, "table1") }
func BenchmarkFig3a(b *testing.B)        { benchFigure(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)        { benchFigure(b, "fig3b") }
func BenchmarkFig3c(b *testing.B)        { benchFigure(b, "fig3c") }
func BenchmarkFig8(b *testing.B)         { benchFigure(b, "fig8") }
func BenchmarkFig9a(b *testing.B)        { benchFigure(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)        { benchFigure(b, "fig9b") }
func BenchmarkFig10a(b *testing.B)       { benchFigure(b, "fig10a") }
func BenchmarkFig10b(b *testing.B)       { benchFigure(b, "fig10b") }
func BenchmarkFig11a(b *testing.B)       { benchFigure(b, "fig11a") }
func BenchmarkFig11b(b *testing.B)       { benchFigure(b, "fig11b") }
func BenchmarkFig12a(b *testing.B)       { benchFigure(b, "fig12a") }
func BenchmarkFig12b(b *testing.B)       { benchFigure(b, "fig12b") }
func BenchmarkFig13(b *testing.B)        { benchFigure(b, "fig13") }
func BenchmarkHeadline(b *testing.B)     { benchFigure(b, "headline") }

// Extension experiments (beyond the paper's figures; see EXPERIMENTS.md).
func BenchmarkExtMWait(b *testing.B)   { benchFigure(b, "ext-mwait") }
func BenchmarkExtSteal(b *testing.B)   { benchFigure(b, "ext-steal") }
func BenchmarkExtPolicy(b *testing.B)  { benchFigure(b, "ext-policy") }
func BenchmarkExtMonitor(b *testing.B) { benchFigure(b, "ext-monitor") }
func BenchmarkExtInOrder(b *testing.B) { benchFigure(b, "ext-inorder") }
func BenchmarkExtBatch(b *testing.B)   { benchFigure(b, "ext-batch") }
func BenchmarkExtBurst(b *testing.B)   { benchFigure(b, "ext-burst") }
func BenchmarkExtNUMA(b *testing.B)    { benchFigure(b, "ext-numa") }
func BenchmarkHWCost(b *testing.B)     { benchFigure(b, "hwcost") }
func BenchmarkExtScaling(b *testing.B) { benchFigure(b, "ext-scaling") }

// --- Real workload kernels ----------------------------------------------

func BenchmarkGREEncap(b *testing.B) {
	var src, dst [16]byte
	src[15], dst[15] = 1, 2
	tun := netproto.NewTunnel(src, dst)
	h := netproto.IPv4Header{
		TotalLen: netproto.IPv4HeaderLen + 1400,
		TTL:      64,
		Protocol: netproto.ProtoUDP,
	}
	pkt := append(h.Marshal(nil), make([]byte, 1400)...)
	b.SetBytes(int64(len(pkt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tun.Encap(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCryptoForward(b *testing.B) {
	fwd, _ := cryptofwd.NewForwarder([]byte("bench master"))
	payload := make([]byte, 1400)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fwd.Seal(uint64(i%16), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketSteering(b *testing.B) {
	s, _ := steering.NewSteerer([]string{"a", "b", "c", "d"}, 4096)
	tuples := make([]steering.FiveTuple, 1024)
	for i := range tuples {
		tuples[i] = steering.FiveTuple{
			Src:     [4]byte{10, 0, byte(i >> 8), byte(i)},
			SrcPort: uint16(i), DstPort: 443, Proto: netproto.ProtoTCP,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Steer(tuples[i%len(tuples)])
	}
}

func BenchmarkErasureEncode(b *testing.B) {
	code, _ := erasure.NewCode(4, 2)
	shards := code.Split(make([]byte, 16<<10))
	b.SetBytes(16 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := code.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErasureReconstruct(b *testing.B) {
	code, _ := erasure.NewCode(4, 2)
	orig := code.Split(make([]byte, 16<<10))
	code.Encode(orig)
	b.SetBytes(16 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(orig))
		copy(shards, orig)
		shards[1], shards[3] = nil, nil
		if err := code.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRAIDComputePQ(b *testing.B) {
	arr, _ := raidp.New(8)
	data := make([][]byte, 8)
	for i := range data {
		data[i] = make([]byte, 4096)
	}
	p := make([]byte, 4096)
	q := make([]byte, 4096)
	b.SetBytes(8 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := arr.ComputePQ(data, p, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRequestDispatch(b *testing.B) {
	d := dispatch.NewDispatcher()
	d.AddBackend("cache", "c0")
	d.AddBackend("cache", "c1")
	d.AddBackend("search", "s0")
	d.AddBackend("ml", "m0")
	frames := make([][]byte, 4)
	for i := range frames {
		r := dispatch.Request{Type: dispatch.RequestType(i), Tenant: 1, RequestID: uint64(i), Payload: []byte("payload")}
		frames[i] = r.Marshal(nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disp, err := d.Prepare(frames[i%4])
		if err != nil {
			b.Fatal(err)
		}
		d.Complete(disp.Tier, disp.Backend)
	}
}

// --- Notification runtime fast paths ------------------------------------

func BenchmarkNotifierNotifyWait(b *testing.B) {
	n, _ := hyperplane.NewNotifier(hyperplane.NotifierConfig{MaxQueues: 64})
	defer n.Close()
	var db atomic.Int64
	qid, _ := n.Register(&db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Add(1)
		n.Notify(qid)
		got, ok := n.Wait()
		if !ok || got != qid {
			b.Fatal("wait failed")
		}
		db.Add(-1)
		n.Reconsider(qid)
	}
}

// benchNotifyMulti runs the full producer/consumer protocol: producers
// increment a doorbell then Notify; one consumer loops Wait -> drain ->
// Consume. The producers×queues grid matches cmd/notifierbench (and
// BENCH_notifier.json), where the same cells are compared against the
// retired single-mutex engine.
func benchNotifyMulti(b *testing.B, producers, queues int) {
	n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{MaxQueues: queues})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	dbs := make([]atomic.Int64, queues)
	qids := make([]hyperplane.QID, queues)
	for i := range qids {
		qids[i], _ = n.Register(&dbs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		iters := b.N / producers
		if p < b.N%producers {
			iters++
		}
		wg.Add(1)
		go func(p, iters int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := (p + i*producers) % queues
				dbs[q].Add(1)
				n.Notify(qids[q])
			}
		}(p, iters)
	}
	consumed := 0
	for consumed < b.N {
		qid, ok := n.Wait()
		if !ok {
			b.Fatal("notifier closed")
		}
		for dbs[qid].Load() > 0 {
			dbs[qid].Add(-1)
			consumed++
		}
		n.Consume(qid)
	}
	wg.Wait()
}

func BenchmarkNotifyMulti(b *testing.B) {
	for _, p := range []int{1, 8, 64} {
		for _, q := range []int{16, 256, 1024} {
			b.Run(fmt.Sprintf("p%d_q%d", p, q), func(b *testing.B) {
				benchNotifyMulti(b, p, q)
			})
		}
	}
}

// One coalesced doorbell ring for a 32-queue burst, drained by WaitBatch:
// the batched fast path producers get from NotifyBatch/IngressBatch.
func BenchmarkNotifierNotifyBatch(b *testing.B) {
	const batch = 32
	n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{MaxQueues: batch})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	dbs := make([]atomic.Int64, batch)
	qids := make([]hyperplane.QID, batch)
	for i := range qids {
		qids[i], _ = n.Register(&dbs[i])
	}
	buf := make([]hyperplane.QID, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := range dbs {
			dbs[q].Add(1)
		}
		n.NotifyBatch(qids)
		for got := 0; got < batch; {
			k := n.WaitBatch(buf)
			for _, qid := range buf[:k] {
				dbs[qid].Add(-1)
				n.Consume(qid)
			}
			got += k
		}
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r, _ := queue.NewRing[int](1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(i)
		if _, ok := r.Pop(); !ok {
			b.Fatal("pop failed")
		}
	}
}

// --- Hardware-model ablations -------------------------------------------

// Ready-set select: the PPA (O(words)) vs the software iterator (O(ready)).
func BenchmarkReadySetHardware1024(b *testing.B) {
	h, err := ready.NewHardware(1024, policy.Spec{Kind: policy.RoundRobin})
	if err != nil {
		b.Fatal(err)
	}
	benchReadySet(b, h)
}

func BenchmarkReadySetSoftware1024(b *testing.B) {
	s, err := ready.NewSoftware(1024, policy.Spec{Kind: policy.RoundRobin})
	if err != nil {
		b.Fatal(err)
	}
	benchReadySet(b, s)
}

func benchReadySet(b *testing.B, rs ready.Set) {
	for i := 0; i < 1024; i++ {
		rs.Activate(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, ok, _ := rs.Select()
		if !ok {
			b.Fatal("dry")
		}
		rs.Activate(q)
	}
}

func BenchmarkMonitorSnoop(b *testing.B) {
	m := monitor.New(monitor.DefaultConfig())
	addrs := make([]mem.Addr, 1000)
	for i := range addrs {
		// Retry with a reallocated address on cuckoo conflict, exactly as
		// the paper's kernel driver does.
		addrs[i] = mem.Addr(0x100000 + i*mem.LineSize)
		for try := 1; m.Add(i, addrs[i]) != nil; try++ {
			addrs[i] = mem.Addr(0x100000 + (1000+i*131+try)*mem.LineSize)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		if _, activate := m.Snoop(a); activate {
			m.Arm(a)
		}
	}
}

func BenchmarkSimEngineEvents(b *testing.B) {
	e := sim.NewEngine()
	var tick func()
	count := 0
	tick = func() {
		count++
		if count < b.N {
			e.After(sim.Nanosecond, tick)
		}
	}
	e.After(sim.Nanosecond, tick)
	b.ResetTimer()
	e.Run(sim.MaxTime)
}

func BenchmarkMemSystemAccess(b *testing.B) {
	sys := mem.NewSystem(mem.DefaultConfig(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Read(i%4, mem.Addr(i%8192)*64)
	}
}

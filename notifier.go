// Package hyperplane is a Go reproduction of "HyperPlane: A Scalable
// Low-Latency Notification Accelerator for Software Data Planes"
// (MICRO 2020).
//
// The package has two halves:
//
//   - A real, usable runtime: Notifier implements the QWAIT programming
//     model in software for Go data planes — register many queues, block
//     until one is ready, and receive the next queue ID under round-robin,
//     weighted round-robin, or strict-priority service policies, without
//     spin-polling empty queues. Queue[T] pairs a lock-free SPSC ring with
//     a Notifier for a complete producer/consumer fast path.
//
//   - A simulation facade: Simulate runs the paper's evaluation platform (a
//     discrete-event CMP model with MESI coherence, the cuckoo-hash
//     monitoring set, and the PPA ready set) and ReproduceFigure regenerates
//     any table or figure from the paper.
package hyperplane

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/internal/ready"
)

// Policy is a queue service policy (paper §III-A).
type Policy int

// Service policies.
const (
	// RoundRobin services ready queues in circular order.
	RoundRobin Policy = iota
	// WeightedRoundRobin lets a queue be serviced for its weight's worth
	// of consecutive rounds, differentiating tenants' QoS.
	WeightedRoundRobin
	// StrictPriority always prefers the lowest-numbered ready queue. Like
	// the paper notes, it can starve high-numbered queues.
	StrictPriority
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case WeightedRoundRobin:
		return "weighted-round-robin"
	case StrictPriority:
		return "strict-priority"
	}
	return "unknown"
}

func (p Policy) internal() (ready.Policy, error) {
	switch p {
	case RoundRobin:
		return ready.RoundRobin, nil
	case WeightedRoundRobin:
		return ready.WeightedRoundRobin, nil
	case StrictPriority:
		return ready.StrictPriority, nil
	}
	return 0, fmt.Errorf("hyperplane: unknown policy %d", int(p))
}

// QID identifies a registered queue within a Notifier.
type QID int

// Errors returned by the Notifier.
var (
	ErrFull         = errors.New("hyperplane: notifier is at queue capacity")
	ErrClosed       = errors.New("hyperplane: notifier closed")
	ErrUnregistered = errors.New("hyperplane: queue is not registered")
	ErrNilDoorbell  = errors.New("hyperplane: doorbell must not be nil")
)

// NotifierConfig configures a Notifier.
type NotifierConfig struct {
	// MaxQueues is the monitoring capacity (like the paper's 1024-entry
	// monitoring set). Defaults to 1024.
	MaxQueues int
	// Policy selects the service discipline. Defaults to RoundRobin.
	Policy Policy
	// Weights are per-QID service weights for WeightedRoundRobin (values
	// >= 1). Defaults to all-1 when nil.
	Weights []int
}

// Notifier is the software realization of the HyperPlane programming model:
// the monitoring set becomes per-queue armed bits checked on Notify, and
// the ready set is the same PPA selection logic the simulated hardware
// uses. Consumers block in Wait instead of spinning over empty queues.
//
// Protocol (mirrors Algorithm 1 in the paper):
//
//	producer:  push item; doorbell.Add(1); n.Notify(qid)
//	consumer:  qid := n.Wait()
//	           if !n.Verify(qid) { continue }   // spurious wake-up
//	           item := pop(); doorbell.Add(-1)
//	           n.Reconsider(qid)
//	           process(item)
//
// All methods are safe for concurrent use.
type Notifier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rs     *ready.Hardware
	queues []nqueue
	free   []QID
	closed bool

	// statistics
	notifies  atomic.Int64
	activates atomic.Int64
	spurious  atomic.Int64
	waits     atomic.Int64
	halts     atomic.Int64 // Waits that actually blocked
}

type nqueue struct {
	doorbell   *atomic.Int64
	armed      bool
	registered bool
}

// NewNotifier creates a Notifier.
func NewNotifier(cfg NotifierConfig) (*Notifier, error) {
	if cfg.MaxQueues == 0 {
		cfg.MaxQueues = 1024
	}
	if cfg.MaxQueues < 1 {
		return nil, fmt.Errorf("hyperplane: MaxQueues must be positive, got %d", cfg.MaxQueues)
	}
	pol, err := cfg.Policy.internal()
	if err != nil {
		return nil, err
	}
	weights := cfg.Weights
	if pol == ready.WeightedRoundRobin {
		if weights == nil {
			weights = make([]int, cfg.MaxQueues)
			for i := range weights {
				weights[i] = 1
			}
		}
		if len(weights) != cfg.MaxQueues {
			return nil, fmt.Errorf("hyperplane: need %d weights, got %d", cfg.MaxQueues, len(weights))
		}
		for i, w := range weights {
			if w < 1 {
				return nil, fmt.Errorf("hyperplane: weight for qid %d must be >= 1", i)
			}
		}
	}
	n := &Notifier{
		rs:     ready.NewHardware(cfg.MaxQueues, pol, weights),
		queues: make([]nqueue, cfg.MaxQueues),
	}
	n.cond = sync.NewCond(&n.mu)
	for i := cfg.MaxQueues - 1; i >= 0; i-- {
		n.free = append(n.free, QID(i))
	}
	return n, nil
}

// Register adds a queue with the given doorbell counter, armed
// (QWAIT-ADD). The doorbell must count queued elements: producers increment
// after enqueuing, consumers decrement before dequeuing.
func (n *Notifier) Register(doorbell *atomic.Int64) (QID, error) {
	if doorbell == nil {
		return 0, ErrNilDoorbell
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return 0, ErrClosed
	}
	if len(n.free) == 0 {
		return 0, ErrFull
	}
	qid := n.free[len(n.free)-1]
	n.free = n.free[:len(n.free)-1]
	n.queues[qid] = nqueue{doorbell: doorbell, armed: true, registered: true}
	n.rs.SetEnabled(int(qid), true)
	// The queue may already hold items at registration.
	if doorbell.Load() > 0 {
		n.activateLocked(qid)
	}
	return qid, nil
}

// Unregister removes a queue (QWAIT-REMOVE).
func (n *Notifier) Unregister(qid QID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.checkLocked(qid); err != nil {
		return err
	}
	n.queues[qid] = nqueue{}
	n.rs.Deactivate(int(qid))
	n.free = append(n.free, qid)
	return nil
}

func (n *Notifier) checkLocked(qid QID) error {
	if n.closed {
		return ErrClosed
	}
	if qid < 0 || int(qid) >= len(n.queues) || !n.queues[qid].registered {
		return ErrUnregistered
	}
	return nil
}

func (n *Notifier) activateLocked(qid QID) {
	n.queues[qid].armed = false
	n.rs.Activate(int(qid))
	n.activates.Add(1)
	n.cond.Signal()
}

// Notify is the software stand-in for the doorbell write transaction the
// hardware monitoring set would snoop: producers call it after
// incrementing the doorbell. If the queue is armed, it is activated in the
// ready set and one waiting consumer wakes; further notifies before re-arm
// coalesce, exactly like disarmed monitoring-set entries.
func (n *Notifier) Notify(qid QID) {
	n.notifies.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	if qid < 0 || int(qid) >= len(n.queues) || !n.queues[qid].registered {
		return
	}
	if n.queues[qid].armed {
		n.activateLocked(qid)
	}
}

// Wait blocks until a queue is ready and returns its QID per the service
// policy (the QWAIT instruction). ok is false if the Notifier is closed.
func (n *Notifier) Wait() (qid QID, ok bool) {
	n.waits.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	blocked := false
	for {
		if n.closed {
			return 0, false
		}
		if q, found, _ := n.rs.Select(); found {
			if blocked {
				n.halts.Add(1)
			}
			return QID(q), true
		}
		blocked = true
		n.cond.Wait()
	}
}

// TryWait is the paper's non-blocking QWAIT variant: it returns the next
// ready QID or ok=false immediately.
func (n *Notifier) TryWait() (qid QID, ok bool) {
	n.waits.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return 0, false
	}
	q, found, _ := n.rs.Select()
	return QID(q), found
}

// WaitTimeout is Wait with a deadline; ok is false on timeout or close.
//
// sync.Cond has no native timed wait, so the timeout is implemented with a
// timer goroutine that broadcasts; the cost is paid only by calls that
// actually block past their deadline's first wake.
func (n *Notifier) WaitTimeout(d time.Duration) (qid QID, ok bool) {
	deadline := time.Now().Add(d)
	n.waits.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if n.closed {
			return 0, false
		}
		if q, found, _ := n.rs.Select(); found {
			return QID(q), true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return 0, false
		}
		t := time.AfterFunc(remain, func() {
			n.mu.Lock()
			n.cond.Broadcast()
			n.mu.Unlock()
		})
		n.cond.Wait()
		t.Stop()
	}
}

// WaitContext blocks like Wait but also returns (with ok=false) when ctx is
// cancelled or times out — the idiomatic way to bound a Go consumer loop.
func (n *Notifier) WaitContext(ctx context.Context) (qid QID, ok bool) {
	n.waits.Add(1)
	// Wake all waiters when the context fires; cheap no-op if never fired.
	stop := context.AfterFunc(ctx, func() {
		n.mu.Lock()
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	defer stop()
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if n.closed || ctx.Err() != nil {
			return 0, false
		}
		if q, found, _ := n.rs.Select(); found {
			return QID(q), true
		}
		n.cond.Wait()
	}
}

// Verify implements QWAIT-VERIFY: it reports whether the queue actually has
// items; if it is empty (a spurious wake-up), the queue is atomically
// re-armed so the next Notify activates it.
func (n *Notifier) Verify(qid QID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.checkLocked(qid) != nil {
		return false
	}
	if n.queues[qid].doorbell.Load() > 0 {
		return true
	}
	n.queues[qid].armed = true
	n.spurious.Add(1)
	return false
}

// Reconsider implements QWAIT-RECONSIDER: after dequeuing (and
// decrementing the doorbell), it re-activates the queue if items remain or
// re-arms it if empty — atomically with respect to Notify, so arrivals
// cannot be missed in between.
func (n *Notifier) Reconsider(qid QID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.checkLocked(qid) != nil {
		return
	}
	if n.queues[qid].doorbell.Load() > 0 {
		n.activateLocked(qid)
	} else {
		n.queues[qid].armed = true
	}
}

// Enable implements QWAIT-ENABLE: the queue may be returned by Wait again.
func (n *Notifier) Enable(qid QID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.checkLocked(qid); err != nil {
		return err
	}
	n.rs.SetEnabled(int(qid), true)
	if n.rs.IsReady(int(qid)) {
		n.cond.Signal()
	}
	return nil
}

// Disable implements QWAIT-DISABLE: the queue keeps accumulating readiness
// but is not returned by Wait until re-enabled (e.g. for congestion
// control pacing).
func (n *Notifier) Disable(qid QID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.checkLocked(qid); err != nil {
		return err
	}
	n.rs.SetEnabled(int(qid), false)
	return nil
}

// Close wakes all waiters with ok=false and rejects further registration.
func (n *Notifier) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	n.cond.Broadcast()
}

// Stats reports runtime counters.
type NotifierStats struct {
	Notifies    int64 // producer doorbell notifications
	Activations int64 // notifies that activated an armed queue
	Waits       int64 // Wait/TryWait calls
	Blocked     int64 // Waits that had to block (halted "core")
	Spurious    int64 // Verify calls that found an empty queue
	Registered  int   // currently registered queues
}

// Stats returns a snapshot of runtime counters.
func (n *Notifier) Stats() NotifierStats {
	n.mu.Lock()
	registered := len(n.queues) - len(n.free)
	n.mu.Unlock()
	return NotifierStats{
		Notifies:    n.notifies.Load(),
		Activations: n.activates.Load(),
		Waits:       n.waits.Load(),
		Blocked:     n.halts.Load(),
		Spurious:    n.spurious.Load(),
		Registered:  registered,
	}
}

// Package hyperplane is a Go reproduction of "HyperPlane: A Scalable
// Low-Latency Notification Accelerator for Software Data Planes"
// (MICRO 2020).
//
// The package has two halves:
//
//   - A real, usable runtime: Notifier implements the QWAIT programming
//     model in software for Go data planes — register many queues, block
//     until one is ready, and receive the next queue ID under a pluggable
//     service policy (round-robin, weighted round-robin, strict priority,
//     deficit round-robin, or EWMA-adaptive), without spin-polling empty
//     queues. Queue[T] pairs a lock-free SPSC ring with a Notifier for a
//     complete producer/consumer fast path.
//
//   - A simulation facade: Simulate runs the paper's evaluation platform (a
//     discrete-event CMP model with MESI coherence, the cuckoo-hash
//     monitoring set, and the PPA ready set) and ReproduceFigure regenerates
//     any table or figure from the paper.
package hyperplane

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/internal/nshard"
	"hyperplane/internal/policy"
	"hyperplane/internal/telemetry"
)

// QID identifies a registered queue within a Notifier.
type QID int

// Errors returned by the Notifier.
var (
	ErrFull         = errors.New("hyperplane: notifier is at queue capacity")
	ErrClosed       = errors.New("hyperplane: notifier closed")
	ErrUnregistered = errors.New("hyperplane: queue is not registered")
	ErrNilDoorbell  = errors.New("hyperplane: doorbell must not be nil")
)

// MaxShards is the hard ceiling on ready-set banks (the bank summary is
// one 64-bit word, one bit per bank).
const MaxShards = 64

// NotifierConfig configures a Notifier.
type NotifierConfig struct {
	// MaxQueues is the monitoring capacity (like the paper's 1024-entry
	// monitoring set). Defaults to 1024.
	MaxQueues int
	// Policy selects and parameterizes the service discipline (the
	// shared arbitration layer in internal/policy). The zero value is
	// round-robin; see the package-level RoundRobin, WeightedRoundRobin,
	// StrictPriority, DeficitRoundRobin and EWMAAdaptive specs.
	Policy Policy
	// Weights are per-QID service weights for weight-aware disciplines
	// (one entry per QID, each >= 1; nil means all-1). A convenience for
	// Policy.Weights — used only when the spec's own Weights is nil.
	Weights []int
	// Shards is the number of ready-set banks (clamped to MaxQueues and
	// MaxShards). QIDs interleave across banks (qid mod Shards), like the
	// paper's banked monitoring set interleaves doorbell lines across
	// directory banks. 0 picks GOMAXPROCS — except under StrictPriority,
	// where the default is 1 because strict priority is inherently a
	// global order (an explicit Shards > 1 gives per-bank strict priority
	// with rotor sweeping between banks). Service-policy semantics are
	// exact within a bank; across banks, see Wait's fairness bound.
	Shards int
	// Telemetry, when non-nil, enables sampled notification-latency
	// tracing: 1 in Telemetry.SampleEvery() notifies stamps a timestamp
	// that the consumer closes with TakeStamp at dispatch and records via
	// telemetry.RecordNotify. When nil (the default), the notify path pays
	// a single nil check and nothing else.
	Telemetry *telemetry.T
	// Steal configures cross-bank work stealing for home-affine waiters
	// (WaitHomeBatch) — the paper's scale-up shared-queue organization,
	// where an idle core absorbs ready queues from a hot sibling bank.
	Steal StealConfig
	// Wait is the initial wait discipline (park / spin / hybrid
	// spin-then-park). The zero value is WaitPark, the seed behavior.
	// Runtime-switchable afterwards via SetWaitConfig.
	Wait WaitConfig
}

// StealConfig parameterizes cross-bank work stealing. With Enable false
// (the default) WaitHomeBatch never touches sibling banks and behaves
// like WaitBatch with a fixed sweep origin.
type StealConfig struct {
	// Enable turns stealing on.
	Enable bool
	// Quantum bounds how many QIDs one steal claims from the victim bank
	// (<= 64). 0 defaults to 8: enough to amortize the victim's bank lock,
	// small enough that a mistaken steal cannot strip a bank bare.
	Quantum int
	// Probes is how many random sibling banks one steal attempt compares
	// by ready occupancy before claiming from the fullest (randomized
	// two-choice victim selection). 0 defaults to 2.
	Probes int
}

// Steal defaults.
const (
	DefaultStealQuantum = 8
	DefaultStealProbes  = 2
)

// Notifier is the software realization of the HyperPlane programming model,
// banked like the paper's monitoring set so producers do not serialize:
// each queue's monitoring-set entry is a packed atomic word (armed bit,
// registered bit, registration epoch) manipulated by CAS, and the ready
// set is sharded into banks, each running the same PPA selection logic the
// simulated hardware uses under its own small lock. Notify on an
// already-activated queue is a single atomic load; Notify that activates
// is one CAS plus an insertion into the queue's bank. Consumers block in
// Wait instead of spinning over empty queues.
//
// Protocol (mirrors Algorithm 1 in the paper):
//
//	producer:  push item; doorbell.Add(1); n.Notify(qid)
//	consumer:  qid := n.Wait()
//	           if !n.Verify(qid) { continue }   // spurious wake-up
//	           item := pop(); doorbell.Add(-1)
//	           n.Reconsider(qid)
//	           process(item)
//
// or, collapsing Verify+Reconsider into one step:
//
//	consumer:  qid := n.Wait()
//	           item, got := pop()               // pop decrements doorbell
//	           n.Consume(qid)
//	           if got { process(item) }
//
// All methods are safe for concurrent use.
type Notifier struct {
	banks  []*nshard.Bank
	parker *nshard.Parker
	states []nshard.QState

	// bankSummary has one bit per bank, set iff the bank has an enabled
	// ready queue; sweeps skip clear banks without locking them.
	bankSummary atomic.Uint64
	// rotor staggers waiters' sweep origins across banks.
	rotor  atomic.Uint64
	kind   policy.Kind
	closed atomic.Bool

	// regMu guards the registration free list (cold control path only —
	// never taken by Notify/Wait/Verify/Reconsider/Consume).
	regMu sync.Mutex
	free  []QID

	// Cross-bank stealing (WaitHomeBatch). stolen[qid] is set when a
	// waiter claims qid from a sibling bank and swapped clear by the
	// Consume that closes the claim, routing the batch charge through the
	// victim bank's ChargeSteal instead of Charge. The holder protocol
	// (at most one worker holds a QID between selection and Consume) makes
	// the flag race-free. stealSeed drives the splitmix64 victim probes.
	steal     StealConfig
	stolen    []atomic.Uint32
	stealSeed atomic.Uint64

	// waitCfg is the live wait discipline (WaitConfig packed into one
	// word): read once per slow-path entry, stored by SetWaitConfig, so
	// strategy switches take effect without restarting waiters.
	waitCfg atomic.Uint64

	// statistics
	notifies  atomic.Int64
	activates atomic.Int64
	spurious  atomic.Int64
	waits     atomic.Int64
	halts     atomic.Int64 // Waits that actually blocked
	spinHits  atomic.Int64 // sweeps satisfied during a spin dwell (C0 hit)
	steals    atomic.Int64 // QIDs claimed from sibling banks

	// Sampled notification tracing (nil stamps = telemetry disabled; the
	// notify path then pays only the nil check). stamps[qid] holds the
	// UnixNano of the oldest un-dispatched sampled notify, claimed by
	// CAS-from-zero at Notify and drained by Swap-to-zero in TakeStamp.
	tel        *telemetry.T
	sampleMask uint64
	stamps     []atomic.Int64
}

// NewNotifier creates a Notifier.
func NewNotifier(cfg NotifierConfig) (*Notifier, error) {
	if cfg.MaxQueues == 0 {
		cfg.MaxQueues = 1024
	}
	if cfg.MaxQueues < 1 {
		return nil, fmt.Errorf("hyperplane: MaxQueues must be positive, got %d", cfg.MaxQueues)
	}
	spec := cfg.Policy
	if spec.Weights == nil {
		spec.Weights = cfg.Weights
	}
	if err := spec.Validate(cfg.MaxQueues); err != nil {
		return nil, fmt.Errorf("hyperplane: %w", err)
	}
	shards := cfg.Shards
	if shards < 0 {
		return nil, fmt.Errorf("hyperplane: Shards must be >= 0, got %d", cfg.Shards)
	}
	if shards == 0 {
		if spec.Kind == policy.StrictPriority {
			shards = 1
		} else {
			shards = runtime.GOMAXPROCS(0)
		}
	}
	if shards > cfg.MaxQueues {
		shards = cfg.MaxQueues
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	if cfg.Steal.Quantum < 0 || cfg.Steal.Quantum > 64 {
		return nil, fmt.Errorf("hyperplane: Steal.Quantum must be in [0, 64], got %d", cfg.Steal.Quantum)
	}
	if cfg.Steal.Probes < 0 {
		return nil, fmt.Errorf("hyperplane: Steal.Probes must be >= 0, got %d", cfg.Steal.Probes)
	}
	if err := cfg.Wait.validate(); err != nil {
		return nil, err
	}
	n := &Notifier{
		parker: nshard.NewParker(shards),
		states: make([]nshard.QState, cfg.MaxQueues),
		kind:   spec.Kind,
		steal:  cfg.Steal,
	}
	n.waitCfg.Store(cfg.Wait.pack())
	if n.steal.Enable {
		if n.steal.Quantum == 0 {
			n.steal.Quantum = DefaultStealQuantum
		}
		if n.steal.Probes == 0 {
			n.steal.Probes = DefaultStealProbes
		}
		n.stolen = make([]atomic.Uint32, cfg.MaxQueues)
	}
	if cfg.Telemetry != nil {
		n.tel = cfg.Telemetry
		n.sampleMask = cfg.Telemetry.SampleMask()
		n.stamps = make([]atomic.Int64, cfg.MaxQueues)
	}
	for s := 0; s < shards; s++ {
		b, err := nshard.NewBank(cfg.MaxQueues, shards, s, spec, &n.bankSummary, uint(s))
		if err != nil {
			return nil, fmt.Errorf("hyperplane: %w", err)
		}
		n.banks = append(n.banks, b)
	}
	for i := cfg.MaxQueues - 1; i >= 0; i-- {
		n.free = append(n.free, QID(i))
	}
	return n, nil
}

// Shards returns the number of ready-set banks.
func (n *Notifier) Shards() int { return len(n.banks) }

func (n *Notifier) bankOf(qid QID) *nshard.Bank { return n.banks[int(qid)%len(n.banks)] }

// Register adds a queue with the given doorbell counter, armed
// (QWAIT-ADD). The doorbell must count queued elements: producers increment
// after enqueuing, consumers decrement before dequeuing.
func (n *Notifier) Register(doorbell *atomic.Int64) (QID, error) {
	if doorbell == nil {
		return 0, ErrNilDoorbell
	}
	n.regMu.Lock()
	defer n.regMu.Unlock()
	if n.closed.Load() {
		return 0, ErrClosed
	}
	if len(n.free) == 0 {
		return 0, ErrFull
	}
	qid := n.free[len(n.free)-1]
	n.free = n.free[:len(n.free)-1]
	st := &n.states[qid]
	st.Register(doorbell)
	n.bankOf(qid).SetEnabled(int(qid), true)
	// The queue may already hold items at registration.
	if doorbell.Load() > 0 && st.TryActivate() {
		n.activate(qid)
	}
	return qid, nil
}

// Unregister removes a queue (QWAIT-REMOVE).
func (n *Notifier) Unregister(qid QID) error {
	n.regMu.Lock()
	defer n.regMu.Unlock()
	if err := n.check(qid); err != nil {
		return err
	}
	n.states[qid].Unregister()
	n.bankOf(qid).Deactivate(int(qid))
	n.free = append(n.free, qid)
	return nil
}

func (n *Notifier) check(qid QID) error {
	if n.closed.Load() {
		return ErrClosed
	}
	if qid < 0 || int(qid) >= len(n.states) || !n.states[qid].Registered() {
		return ErrUnregistered
	}
	return nil
}

// activate inserts an already-pending queue into its bank and wakes one
// waiter, preferring waiters parked on that bank's stripe.
func (n *Notifier) activate(qid QID) {
	s := int(qid) % len(n.banks)
	n.banks[s].Activate(int(qid))
	n.activates.Add(1)
	n.parker.WakeOne(s)
}

// Notify is the software stand-in for the doorbell write transaction the
// hardware monitoring set would snoop: producers call it after
// incrementing the doorbell. If the queue is armed, it is activated in its
// ready-set bank and one waiting consumer wakes; further notifies before
// re-arm coalesce, exactly like disarmed monitoring-set entries. The
// coalescing case is a single atomic load — no locks on the producer path.
func (n *Notifier) Notify(qid QID) {
	c := n.notifies.Add(1)
	if qid < 0 || int(qid) >= len(n.states) {
		return
	}
	if n.stamps != nil && uint64(c)&n.sampleMask == 0 {
		// Sampled: open a latency span. The stamp is written before the
		// activation so a consumer dispatching this notification cannot
		// observe an empty slot. Keep-oldest semantics: the plain load
		// skips the clock read and the RMW when a span is already open,
		// and the CAS-from-zero closes the load→CAS race in favor of
		// whichever sampled notify stamped first.
		if s := &n.stamps[qid]; s.Load() == 0 {
			s.CompareAndSwap(0, time.Now().UnixNano())
		}
	}
	if n.states[qid].TryActivate() {
		n.activate(qid)
	}
}

// NotifyBatch notifies many queues with one call, amortizing waiter
// wakeups for bursty producers: activations are collected first and up to
// that many waiters are woken at the end. Duplicate or already-activated
// QIDs coalesce exactly as with Notify.
func (n *Notifier) NotifyBatch(qids []QID) {
	base := n.notifies.Add(int64(len(qids))) - int64(len(qids))
	activated := 0
	firstBank := 0
	for i, qid := range qids {
		if qid < 0 || int(qid) >= len(n.states) {
			continue
		}
		if n.stamps != nil && uint64(base+int64(i)+1)&n.sampleMask == 0 {
			if s := &n.stamps[qid]; s.Load() == 0 {
				s.CompareAndSwap(0, time.Now().UnixNano())
			}
		}
		if n.states[qid].TryActivate() {
			s := int(qid) % len(n.banks)
			n.banks[s].Activate(int(qid))
			n.activates.Add(1)
			if activated == 0 {
				firstBank = s
			}
			activated++
		}
	}
	if activated > 0 {
		n.parker.WakeN(firstBank, activated)
	}
}

// startBank picks the sweep origin for one Wait: a rotor staggers
// concurrent waiters across banks. Strict priority always sweeps from
// bank 0 so lower QIDs (which live in lower banks first) keep precedence.
func (n *Notifier) startBank() int {
	if n.kind == policy.StrictPriority || len(n.banks) == 1 {
		return 0
	}
	return int(n.rotor.Add(1)-1) % len(n.banks)
}

// sweep visits banks once, starting at `start`, skipping banks whose
// summary bit is clear, and returns the first selection.
func (n *Notifier) sweep(start int) (QID, bool) {
	S := len(n.banks)
	for i := 0; i < S; i++ {
		s := start + i
		if s >= S {
			s -= S
		}
		if n.bankSummary.Load()&(1<<uint(s)) == 0 {
			continue
		}
		if q, ok := n.banks[s].Select(); ok {
			return QID(q), true
		}
	}
	return 0, false
}

// sweepBatch is sweep for WaitBatch: it keeps selecting (draining banks
// under one lock acquisition each) until dst is full or all banks are dry.
func (n *Notifier) sweepBatch(start int, dst []QID) int {
	var buf [64]int
	c := 0
	S := len(n.banks)
	for i := 0; i < S && c < len(dst); i++ {
		s := start + i
		if s >= S {
			s -= S
		}
		if n.bankSummary.Load()&(1<<uint(s)) == 0 {
			continue
		}
		for c < len(dst) {
			lim := len(dst) - c
			if lim > len(buf) {
				lim = len(buf)
			}
			got := n.banks[s].SelectMany(buf[:lim])
			for j := 0; j < got; j++ {
				dst[c] = QID(buf[j])
				c++
			}
			if got < lim {
				break
			}
		}
	}
	return c
}

// SetWaitConfig switches the live wait discipline (park / spin / hybrid)
// without restarting the Notifier. Waiters already parked stay parked
// until their next wakeup; spinning waiters adopt the new discipline
// within one recheck period; every wait entered afterwards follows it
// immediately.
func (n *Notifier) SetWaitConfig(cfg WaitConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	n.waitCfg.Store(cfg.pack())
	return nil
}

// WaitConfig returns the live wait discipline.
func (n *Notifier) WaitConfig() WaitConfig { return unpackWaitConfig(n.waitCfg.Load()) }

// SetEWMAAlpha retunes the EWMA-adaptive policy's smoothing factor on
// every bank, live, reporting whether the discipline accepted it (false
// for non-EWMA policies or alpha outside (0, 1]). Learned per-queue
// pressure is kept; only future updates use the new alpha — the
// governor's arrival-rate autotune rides this.
func (n *Notifier) SetEWMAAlpha(alpha float64) bool {
	applied := false
	for _, b := range n.banks {
		if b.SetAlpha(alpha) {
			applied = true
		}
	}
	return applied
}

// spinRecheckMask: a pure-spin waiter re-reads the live wait config every
// this-many+1 polls so SetWaitConfig can demote it without a notify.
const spinRecheckMask = 1023

// spinner drives the pre-park phase of one wait per the live strategy:
// the C0 dwell before the C1 drop. It lives on the waiter's stack — the
// wait slow path stays allocation-free except for the parking token.
type spinner struct {
	n      *Notifier
	budget int // remaining polls; -1 = unbounded (pure spin)
	polls  int
}

// newSpinner reads the live wait config once. WaitPark yields a spinner
// whose more() is immediately false, so parking waiters pay one atomic
// load and nothing else.
func (n *Notifier) newSpinner() spinner {
	cfg := unpackWaitConfig(n.waitCfg.Load())
	switch cfg.Strategy {
	case WaitSpin:
		return spinner{n: n, budget: -1}
	case WaitHybrid:
		return spinner{n: n, budget: cfg.spinBudget()}
	}
	return spinner{}
}

// more reports whether the caller should sweep the banks again before
// parking, yielding the processor between polls.
func (sp *spinner) more() bool {
	if sp.budget == 0 {
		return false
	}
	if sp.budget > 0 {
		sp.budget--
	} else if sp.polls&spinRecheckMask == 0 {
		cfg := unpackWaitConfig(sp.n.waitCfg.Load())
		switch cfg.Strategy {
		case WaitSpin:
			// still unbounded
		case WaitHybrid:
			sp.budget = cfg.spinBudget()
		default:
			return false
		}
	}
	sp.polls++
	runtime.Gosched()
	return true
}

// Wait blocks until a queue is ready and returns its QID per the service
// policy (the QWAIT instruction). ok is false if the Notifier is closed.
//
// Fairness across banks: policy semantics are exact within a bank. Across
// banks, each Wait sweeps from a rotating origin, so with S banks and all
// banks non-empty, a continuously-ready queue is serviced at least once
// every S*R selections, where R is its own bank's policy bound (the
// number of ready queues in the bank for round-robin, the bank's
// outstanding weight sum for WRR). With balanced QID interleave this
// degenerates to the single-lock bound. Shards=1 recovers exact global
// policy order.
func (n *Notifier) Wait() (qid QID, ok bool) {
	n.waits.Add(1)
	start := n.startBank()
	blocked := false
	for {
		if n.closed.Load() {
			return 0, false
		}
		if q, ok := n.sweep(start); ok {
			if blocked {
				n.halts.Add(1)
			}
			return q, true
		}
		// C0 dwell: spin per the live wait strategy before parking.
		for sp := n.newSpinner(); sp.more(); {
			if n.closed.Load() {
				return 0, false
			}
			if q, ok := n.sweep(start); ok {
				n.spinHits.Add(1)
				if blocked {
					n.halts.Add(1)
				}
				return q, true
			}
		}
		// Park (the C1 drop). The enqueue-then-resweep order pairs with
		// producers' activate-then-wake order: either the producer sees
		// us parked, or our re-sweep sees its activation.
		w := nshard.NewWaiter()
		n.parker.Enqueue(start, w)
		if q, ok := n.sweep(start); ok {
			n.parker.Cancel(w, start)
			if blocked {
				n.halts.Add(1)
			}
			return q, true
		}
		if n.closed.Load() {
			n.parker.Cancel(w, start)
			return 0, false
		}
		blocked = true
		<-w.C()
	}
}

// WaitBatch blocks like Wait but drains up to len(dst) ready QIDs in one
// call, amortizing sweep and wakeup costs for bursty traffic. It returns
// the number filled (0 when the Notifier is closed or dst is empty). The
// caller owes each returned QID its own Verify/Reconsider or Consume.
//
// The batch is a snapshot: the policy orders QIDs within it, but queues
// that become ready mid-batch are not reconsidered until the next call.
// Under StrictPriority that weakens the "always the lowest ready QID"
// guarantee across a batch — use Wait (or len(dst)==1) when per-item
// strictness matters.
func (n *Notifier) WaitBatch(dst []QID) int {
	if len(dst) == 0 {
		return 0
	}
	n.waits.Add(1)
	start := n.startBank()
	blocked := false
	for {
		if n.closed.Load() {
			return 0
		}
		if c := n.sweepBatch(start, dst); c > 0 {
			if blocked {
				n.halts.Add(1)
			}
			return c
		}
		for sp := n.newSpinner(); sp.more(); {
			if n.closed.Load() {
				return 0
			}
			if c := n.sweepBatch(start, dst); c > 0 {
				n.spinHits.Add(1)
				if blocked {
					n.halts.Add(1)
				}
				return c
			}
		}
		w := nshard.NewWaiter()
		n.parker.Enqueue(start, w)
		if c := n.sweepBatch(start, dst); c > 0 {
			n.parker.Cancel(w, start)
			if blocked {
				n.halts.Add(1)
			}
			return c
		}
		if n.closed.Load() {
			n.parker.Cancel(w, start)
			return 0
		}
		blocked = true
		<-w.C()
	}
}

// WaitHomeBatch is WaitBatch for a home-affine consumer in the scale-up
// shared-queue organization: the caller names its home bank, drains that
// bank first, and — when the home bank is empty and stealing is enabled
// (NotifierConfig.Steal) — claims up to the steal quantum of ready QIDs
// from a sibling bank before parking on the home bank's stripe. Victims
// are picked by randomized two-choice: Probes random siblings with a set
// summary bit are compared by ready occupancy and the fullest is claimed
// from through the policy's steal path, which hands out the queues the
// victim's discipline would service last. With stealing disabled it is
// exactly WaitBatch with a fixed sweep origin of home.
//
// Stolen QIDs carry full QWAIT semantics: the caller owes each returned
// QID its Verify/Reconsider or Consume, and the batch charge of a stolen
// QID's ConsumeN routes to the victim bank (QIDs are bank-static,
// qid mod Shards) through the policy's ChargeSteal path — so DRR
// deficits and EWMA scores account the stolen work while the victim's
// rotor, and with it its home consumers' service order, stays exactly as
// if the stolen queue had drained on its own.
func (n *Notifier) WaitHomeBatch(home int, dst []QID) int {
	if len(dst) == 0 {
		return 0
	}
	if S := len(n.banks); home < 0 || home >= S {
		home %= S
		if home < 0 {
			home += S
		}
	}
	n.waits.Add(1)
	blocked := false
	for {
		if n.closed.Load() {
			return 0
		}
		if c := n.homeSweep(home, dst); c > 0 {
			if blocked {
				n.halts.Add(1)
			}
			return c
		}
		for sp := n.newSpinner(); sp.more(); {
			if n.closed.Load() {
				return 0
			}
			if c := n.homeSweep(home, dst); c > 0 {
				n.spinHits.Add(1)
				if blocked {
					n.halts.Add(1)
				}
				return c
			}
		}
		w := nshard.NewWaiter()
		n.parker.Enqueue(home, w)
		if c := n.homeSweep(home, dst); c > 0 {
			n.parker.Cancel(w, home)
			if blocked {
				n.halts.Add(1)
			}
			return c
		}
		if n.closed.Load() {
			n.parker.Cancel(w, home)
			return 0
		}
		blocked = true
		<-w.C()
	}
}

// homeSweep is WaitHomeBatch's selection pass: home bank, then a
// two-choice steal probe, then — before giving up, and therefore before
// the caller parks — an exhaustive scan of every bank. The backstop
// matters for liveness: a wake token consumed by a waiter whose probes
// happened to miss the only non-empty bank must still find that work, or
// the system could park every worker while queues are ready.
func (n *Notifier) homeSweep(home int, dst []QID) int {
	var buf [64]int
	if n.bankSummary.Load()&(1<<uint(home)) != 0 {
		lim := len(dst)
		if lim > len(buf) {
			lim = len(buf)
		}
		if got := n.banks[home].SelectMany(buf[:lim]); got > 0 {
			for j := 0; j < got; j++ {
				dst[j] = QID(buf[j])
			}
			return got
		}
	}
	if !n.steal.Enable {
		// Home-affine waiting without stealing: fall back to the plain
		// full sweep so no work is stranded in other banks.
		return n.sweepBatch(home, dst)
	}
	S := len(n.banks)
	if S == 1 {
		return 0
	}
	lim := n.steal.Quantum
	if lim > len(dst) {
		lim = len(dst)
	}
	if lim > len(buf) {
		lim = len(buf)
	}
	// Randomized two-choice victim selection among non-empty siblings.
	sum := n.bankSummary.Load()
	victim, best := -1, 0
	for p := 0; p < n.steal.Probes; p++ {
		b := int(n.stealRand() % uint64(S))
		if b == home || sum&(1<<uint(b)) == 0 {
			continue
		}
		if rc := n.banks[b].ReadyCount(); rc > best {
			victim, best = b, rc
		}
	}
	if victim >= 0 {
		if got := n.stealFrom(victim, buf[:lim], dst); got > 0 {
			return got
		}
	}
	// Backstop: exhaustive scan in rotor order, home bank re-checked
	// last (work may have arrived there while we probed).
	if n.bankSummary.Load() != 0 {
		for i := 1; i < S; i++ {
			b := home + i
			if b >= S {
				b -= S
			}
			if n.bankSummary.Load()&(1<<uint(b)) == 0 {
				continue
			}
			if got := n.stealFrom(b, buf[:lim], dst); got > 0 {
				return got
			}
		}
		if n.bankSummary.Load()&(1<<uint(home)) != 0 {
			lim2 := len(dst)
			if lim2 > len(buf) {
				lim2 = len(buf)
			}
			if got := n.banks[home].SelectMany(buf[:lim2]); got > 0 {
				for j := 0; j < got; j++ {
					dst[j] = QID(buf[j])
				}
				return got
			}
		}
	}
	return 0
}

// stealFrom claims up to len(buf) QIDs from the victim bank's steal path
// and marks each stolen so its closing Consume routes the batch charge
// back to the victim (see WaitHomeBatch).
func (n *Notifier) stealFrom(victim int, buf []int, dst []QID) int {
	got := n.banks[victim].StealMany(buf)
	for j := 0; j < got; j++ {
		n.stolen[buf[j]].Store(1)
		dst[j] = QID(buf[j])
	}
	if got > 0 {
		n.steals.Add(int64(got))
	}
	return got
}

// stealRand is an allocation-free splitmix64 step over a shared seed;
// concurrent callers may interleave but every value is well mixed, which
// is all victim probing needs.
func (n *Notifier) stealRand() uint64 {
	z := n.stealSeed.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TryWait is the paper's non-blocking QWAIT variant: it returns the next
// ready QID or ok=false immediately.
func (n *Notifier) TryWait() (qid QID, ok bool) {
	n.waits.Add(1)
	if n.closed.Load() {
		return 0, false
	}
	return n.sweep(n.startBank())
}

// WaitTimeout is Wait with a deadline; ok is false on timeout or close.
// One timer is allocated per call and reused across wake-ups.
func (n *Notifier) WaitTimeout(d time.Duration) (qid QID, ok bool) {
	n.waits.Add(1)
	deadline := time.Now().Add(d)
	start := n.startBank()
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if n.closed.Load() {
			return 0, false
		}
		if q, ok := n.sweep(start); ok {
			return q, true
		}
		for sp := n.newSpinner(); sp.more(); {
			if n.closed.Load() || time.Until(deadline) <= 0 {
				return 0, false
			}
			if q, ok := n.sweep(start); ok {
				n.spinHits.Add(1)
				return q, true
			}
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return 0, false
		}
		w := nshard.NewWaiter()
		n.parker.Enqueue(start, w)
		if q, ok := n.sweep(start); ok {
			n.parker.Cancel(w, start)
			return q, true
		}
		if n.closed.Load() {
			n.parker.Cancel(w, start)
			return 0, false
		}
		if timer == nil {
			timer = time.NewTimer(remain)
		} else {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(remain)
		}
		select {
		case <-w.C():
		case <-timer.C:
			n.parker.Cancel(w, start)
			// A racing activation may have signaled us instead; take a
			// last look before reporting timeout.
			if q, ok := n.sweep(start); ok {
				return q, true
			}
			return 0, false
		}
	}
}

// WaitContext blocks like Wait but also returns (with ok=false) when ctx is
// cancelled or times out — the idiomatic way to bound a Go consumer loop.
func (n *Notifier) WaitContext(ctx context.Context) (qid QID, ok bool) {
	n.waits.Add(1)
	start := n.startBank()
	for {
		if n.closed.Load() || ctx.Err() != nil {
			return 0, false
		}
		if q, ok := n.sweep(start); ok {
			return q, true
		}
		for sp := n.newSpinner(); sp.more(); {
			if n.closed.Load() || ctx.Err() != nil {
				return 0, false
			}
			if q, ok := n.sweep(start); ok {
				n.spinHits.Add(1)
				return q, true
			}
		}
		w := nshard.NewWaiter()
		n.parker.Enqueue(start, w)
		if q, ok := n.sweep(start); ok {
			n.parker.Cancel(w, start)
			return q, true
		}
		if n.closed.Load() || ctx.Err() != nil {
			n.parker.Cancel(w, start)
			return 0, false
		}
		select {
		case <-w.C():
		case <-ctx.Done():
			n.parker.Cancel(w, start)
			return 0, false
		}
	}
}

// Verify implements QWAIT-VERIFY: it reports whether the queue actually has
// items; if it is empty (a spurious wake-up), the queue is re-armed so the
// next Notify activates it. The re-arm is race-free against concurrent
// producers: after a successful re-arm the doorbell is checked again and
// the queue re-activated if a producer slipped in between.
func (n *Notifier) Verify(qid QID) bool {
	if qid < 0 || int(qid) >= len(n.states) {
		return false
	}
	st := &n.states[qid]
	if n.closed.Load() || !st.Registered() {
		return false
	}
	db := st.Doorbell()
	if db == nil {
		return false
	}
	if db.Load() > 0 {
		return true
	}
	n.spurious.Add(1)
	if st.TryRearm() {
		if db.Load() > 0 && st.TryActivate() {
			n.activate(qid)
		}
	}
	return false
}

// Reconsider implements QWAIT-RECONSIDER: after dequeuing (and
// decrementing the doorbell), it re-activates the queue if items remain or
// re-arms it if empty — with a post-rearm doorbell re-check, so arrivals
// cannot be missed in between.
func (n *Notifier) Reconsider(qid QID) {
	n.consume(qid)
}

// Consume collapses Verify and Reconsider into one step for consumers
// that pop first and check what they got (Pop on an SPSC ring decrements
// the doorbell itself): call it after the pop attempt. It re-activates
// the queue if the doorbell shows remaining items (returning true) or
// re-arms it (returning false), closing the producer race the same way
// Reconsider does. Mux.Serve uses it so each item costs one ready-set
// bank acquisition instead of two global-lock round-trips.
func (n *Notifier) Consume(qid QID) bool {
	return n.consume(qid)
}

// ConsumeN is Consume for batch consumers: call it after draining items
// elements from the queue in one PopBatch. Selection charged the queue one
// service unit when Wait returned it, so ConsumeN bills the remaining
// items-1 to the queue's bank policy before re-arming or re-activating —
// keeping work-aware disciplines (DRR deficits, EWMA rates) accurate when
// each selection services a whole batch. When the queue's service turn has
// already ended, DRR carries the overdraw as debt into its next quantum
// grant, so long-run shares stay proportional to weights.
func (n *Notifier) ConsumeN(qid QID, items int) bool {
	if qid >= 0 && int(qid) < len(n.states) {
		// A stolen QID's batch charge routes to the victim bank's steal
		// accounting: work is billed (DRR debt, EWMA decay) but the
		// victim's rotor is not advanced — its home consumers' order must
		// be what it would have been had the queue drained on its own.
		// Swap-clear before consume(): the flag must be gone before
		// activate() can hand the QID to another worker.
		stolen := n.stolen != nil && n.stolen[qid].Swap(0) == 1
		if items > 1 {
			if stolen {
				n.bankOf(qid).ChargeSteal(int(qid), items-1)
			} else {
				n.bankOf(qid).Charge(int(qid), items-1)
			}
		}
	}
	return n.consume(qid)
}

func (n *Notifier) consume(qid QID) bool {
	if qid < 0 || int(qid) >= len(n.states) {
		return false
	}
	if n.stolen != nil {
		// Single-item consumers (Consume/Reconsider) close a steal claim
		// here; the flag must clear before the re-activation below can
		// hand the QID to another worker.
		n.stolen[qid].Store(0)
	}
	st := &n.states[qid]
	if !st.Registered() {
		return false
	}
	db := st.Doorbell()
	if db == nil {
		return false
	}
	if db.Load() > 0 {
		// Still backlogged: the entry stays pending; just put it back on
		// its bank's ready set.
		n.activate(qid)
		return true
	}
	if st.TryRearm() {
		// Closed the rearm window; re-check for a producer that rang the
		// doorbell while we were pending (its Notify coalesced).
		if db.Load() > 0 && st.TryActivate() {
			n.activate(qid)
		}
	}
	return false
}

// Enable implements QWAIT-ENABLE: the queue may be returned by Wait again.
func (n *Notifier) Enable(qid QID) error {
	if err := n.check(qid); err != nil {
		return err
	}
	s := int(qid) % len(n.banks)
	if n.banks[s].SetEnabled(int(qid), true) {
		n.parker.WakeOne(s)
	}
	return nil
}

// Disable implements QWAIT-DISABLE: the queue keeps accumulating readiness
// but is not returned by Wait until re-enabled (e.g. for congestion
// control pacing).
func (n *Notifier) Disable(qid QID) error {
	if err := n.check(qid); err != nil {
		return err
	}
	n.bankOf(qid).SetEnabled(int(qid), false)
	return nil
}

// Close wakes all waiters with ok=false and rejects further registration.
func (n *Notifier) Close() {
	n.closed.Store(true)
	n.parker.WakeAll()
}

// Stats reports runtime counters.
type NotifierStats struct {
	Notifies    int64 // producer doorbell notifications
	Activations int64 // notifies that activated an armed queue
	Waits       int64 // Wait/TryWait calls
	Blocked     int64 // Waits that had to block (halted "core")
	SpinHits    int64 // sweeps satisfied during a spin dwell (work found in C0)
	Spurious    int64 // Verify calls that found an empty queue
	Steals      int64 // QIDs claimed from sibling banks (WaitHomeBatch)
	Registered  int   // currently registered queues
}

// Stats returns a snapshot of runtime counters.
func (n *Notifier) Stats() NotifierStats {
	n.regMu.Lock()
	registered := len(n.states) - len(n.free)
	n.regMu.Unlock()
	return NotifierStats{
		Notifies:    n.notifies.Load(),
		Activations: n.activates.Load(),
		Waits:       n.waits.Load(),
		Blocked:     n.halts.Load(),
		SpinHits:    n.spinHits.Load(),
		Spurious:    n.spurious.Load(),
		Steals:      n.steals.Load(),
		Registered:  registered,
	}
}

// Telemetry returns the telemetry plane the Notifier was configured with
// (nil when tracing is disabled).
func (n *Notifier) Telemetry() *telemetry.T { return n.tel }

// TakeStamp drains and returns the queue's pending sampled-notify
// timestamp (UnixNano), or 0 when no sampled span is open. Consumers
// call it at handler-dispatch time and close the span with
// telemetry.RecordNotify. Lock- and allocation-free; always 0 when
// telemetry is disabled.
func (n *Notifier) TakeStamp(qid QID) int64 {
	if n.stamps == nil || qid < 0 || int(qid) >= len(n.stamps) {
		return 0
	}
	// Most dispatches find no open span (1/SampleEvery do); the plain
	// load keeps that common case a shared cache read instead of an RMW
	// that would bounce the line between workers and sampling producers.
	s := &n.stamps[qid]
	if s.Load() == 0 {
		return 0
	}
	return s.Swap(0)
}

// BankStats is one ready-set bank's activity view: current occupancy,
// selection/activation counters, and the park/wake counters of the
// parker stripe paired with the bank — the software analogue of the
// paper's per-bank monitoring-set activity (halted cores parked on a
// bank, doorbell activations into it).
type BankStats struct {
	Bank        int   // bank index
	Ready       int   // enabled ready queues right now
	Selects     int64 // selections served from this bank
	Activations int64 // activations inserted into this bank
	Steals      int64 // QIDs stolen from this bank by sibling consumers
	Parks       int64 // waiters parked on this bank's stripe
	Wakes       int64 // wakeups delivered from this bank's stripe
	BlockedNs   int64 // cumulative ns waiters spent parked on the stripe (C1 residency)
}

// BankStats snapshots every bank's counters.
func (n *Notifier) BankStats() []BankStats {
	out := make([]BankStats, len(n.banks))
	for s, b := range n.banks {
		c := b.Counts()
		p := n.parker.StripeCounts(s)
		out[s] = BankStats{
			Bank:        s,
			Ready:       c.Ready,
			Selects:     c.Selects,
			Activations: c.Activations,
			Steals:      c.Steals,
			Parks:       p.Parks,
			Wakes:       p.Wakes,
			BlockedNs:   p.BlockedNs,
		}
	}
	return out
}

// PolicyInspection is a read-only snapshot of one bank's arbitration
// state (the policy.Inspect hook surfaced through the public API).
// Vector fields are indexed by the bank's local queue order; QIDs maps
// each local index back to the global queue ID.
type PolicyInspection struct {
	Bank    int       // bank index
	Kind    string    // discipline name
	Rotor   int       // next-selection scan origin
	Counter int       // WRR remaining budget for the favored queue
	Weights []int     // static weights / DRR quanta (nil if unused)
	Deficit []int64   // DRR per-queue credit (negative = carried debt)
	Score   []float64 // EWMA arrival-pressure estimates
	Round   int64     // EWMA service round
	QIDs    []QID     // global QID for each local index
}

// InspectPolicy snapshots the arbitration state of every bank. Each
// bank's snapshot is internally consistent (taken under that bank's
// lock); the slice as a whole is not a global atomic snapshot.
func (n *Notifier) InspectPolicy() []PolicyInspection {
	out := make([]PolicyInspection, len(n.banks))
	total := len(n.states)
	for s, b := range n.banks {
		insp := b.Inspect()
		stride, offset := b.Geometry()
		localN := (total - offset + stride - 1) / stride
		qids := make([]QID, localN)
		for l := range qids {
			qids[l] = QID(l*stride + offset)
		}
		out[s] = PolicyInspection{
			Bank:    s,
			Kind:    insp.Kind.String(),
			Rotor:   insp.Rotor,
			Counter: insp.Counter,
			Weights: insp.Weights,
			Deficit: insp.Deficit,
			Score:   insp.Score,
			Round:   insp.Round,
			QIDs:    qids,
		}
	}
	return out
}

package hyperplane

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newN(t *testing.T, cfg NotifierConfig) *Notifier {
	t.Helper()
	n, err := NewNotifier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNotifierBasicFlow(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 8})
	defer n.Close()
	var db atomic.Int64
	qid, err := n.Register(&db)
	if err != nil {
		t.Fatal(err)
	}

	// Producer: increment doorbell, notify.
	db.Add(1)
	n.Notify(qid)

	got, ok := n.Wait()
	if !ok || got != qid {
		t.Fatalf("Wait = %v, %v", got, ok)
	}
	if !n.Verify(qid) {
		t.Fatal("Verify rejected non-empty queue")
	}
	db.Add(-1) // dequeue
	n.Reconsider(qid)

	// Queue drained: next Wait must block, and a fresh Notify must wake it.
	if _, ok := n.TryWait(); ok {
		t.Fatal("TryWait found phantom work")
	}
	done := make(chan QID, 1)
	go func() {
		q, _ := n.Wait()
		done <- q
	}()
	time.Sleep(10 * time.Millisecond)
	db.Add(1)
	n.Notify(qid)
	select {
	case q := <-done:
		if q != qid {
			t.Fatalf("woke with %v", q)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never woke")
	}
}

func TestNotifyCoalescesWhileDisarmed(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4})
	defer n.Close()
	var db atomic.Int64
	qid, _ := n.Register(&db)
	for i := 0; i < 5; i++ {
		db.Add(1)
		n.Notify(qid)
	}
	// Only one activation despite five notifies.
	if got, ok := n.TryWait(); !ok || got != qid {
		t.Fatal("first TryWait failed")
	}
	if _, ok := n.TryWait(); ok {
		t.Fatal("coalesced notifies produced extra activations")
	}
	// Reconsider re-activates because items remain.
	db.Add(-1)
	n.Reconsider(qid)
	if got, ok := n.TryWait(); !ok || got != qid {
		t.Fatal("Reconsider did not re-activate backlogged queue")
	}
	st := n.Stats()
	if st.Notifies != 5 {
		t.Errorf("notifies = %d", st.Notifies)
	}
}

func TestVerifyFiltersSpuriousAndRearms(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4})
	defer n.Close()
	var db atomic.Int64
	qid, _ := n.Register(&db)
	db.Add(1)
	n.Notify(qid)
	db.Add(-1) // item stolen before Verify (e.g. by a direct consumer)
	got, _ := n.Wait()
	if n.Verify(got) {
		t.Fatal("Verify accepted empty queue")
	}
	if n.Stats().Spurious != 1 {
		t.Error("spurious not counted")
	}
	// Re-armed: the next producer notify activates again.
	db.Add(1)
	n.Notify(qid)
	if _, ok := n.TryWait(); !ok {
		t.Fatal("re-armed queue did not activate")
	}
}

func TestRegisterPreloadedQueue(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4})
	defer n.Close()
	var db atomic.Int64
	db.Store(3) // items exist before registration
	qid, _ := n.Register(&db)
	got, ok := n.TryWait()
	if !ok || got != qid {
		t.Fatal("preloaded queue not activated at registration")
	}
}

func TestRegisterErrors(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 2})
	if _, err := n.Register(nil); !errors.Is(err, ErrNilDoorbell) {
		t.Errorf("nil doorbell: %v", err)
	}
	var a, b, c atomic.Int64
	n.Register(&a)
	n.Register(&b)
	if _, err := n.Register(&c); !errors.Is(err, ErrFull) {
		t.Errorf("full: %v", err)
	}
	n.Close()
	if _, err := n.Register(&c); !errors.Is(err, ErrClosed) {
		t.Errorf("closed: %v", err)
	}
}

func TestUnregisterAndReuse(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 2})
	defer n.Close()
	var a, b atomic.Int64
	q1, _ := n.Register(&a)
	if err := n.Unregister(q1); err != nil {
		t.Fatal(err)
	}
	if err := n.Unregister(q1); !errors.Is(err, ErrUnregistered) {
		t.Errorf("double unregister: %v", err)
	}
	q2, err := n.Register(&b)
	if err != nil {
		t.Fatal(err)
	}
	if q2 != q1 {
		t.Errorf("freed QID not reused: %v vs %v", q2, q1)
	}
	// Notify on an unregistered QID is a harmless no-op.
	n.Notify(QID(99))
}

func TestEnableDisable(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4})
	defer n.Close()
	var a, b atomic.Int64
	qa, _ := n.Register(&a)
	qb, _ := n.Register(&b)
	a.Add(1)
	n.Notify(qa)
	b.Add(1)
	n.Notify(qb)
	if err := n.Disable(qa); err != nil {
		t.Fatal(err)
	}
	if got, ok := n.TryWait(); !ok || got != qb {
		t.Fatalf("disabled queue returned: %v %v", got, ok)
	}
	if _, ok := n.TryWait(); ok {
		t.Fatal("nothing should remain with qa disabled")
	}
	// Enable reveals the retained readiness and wakes a waiter.
	done := make(chan QID, 1)
	go func() {
		q, _ := n.Wait()
		done <- q
	}()
	time.Sleep(10 * time.Millisecond)
	if err := n.Enable(qa); err != nil {
		t.Fatal(err)
	}
	select {
	case q := <-done:
		if q != qa {
			t.Fatalf("woke with %v", q)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Enable did not wake waiter")
	}
}

func TestWaitTimeout(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 2})
	defer n.Close()
	var db atomic.Int64
	qid, _ := n.Register(&db)

	start := time.Now()
	if _, ok := n.WaitTimeout(50 * time.Millisecond); ok {
		t.Fatal("timeout wait found phantom work")
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("returned too early")
	}

	db.Add(1)
	n.Notify(qid)
	if got, ok := n.WaitTimeout(time.Second); !ok || got != qid {
		t.Fatalf("WaitTimeout = %v, %v", got, ok)
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 2})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := n.Wait(); ok {
				t.Error("Wait returned ok after close")
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	n.Close()
	wg.Wait()
}

func TestRoundRobinAcrossQueues(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4, Policy: RoundRobin})
	defer n.Close()
	dbs := make([]atomic.Int64, 3)
	qids := make([]QID, 3)
	for i := range dbs {
		qids[i], _ = n.Register(&dbs[i])
		dbs[i].Add(1)
		n.Notify(qids[i])
	}
	seen := map[QID]bool{}
	for range qids {
		q, ok := n.Wait()
		if !ok {
			t.Fatal("wait failed")
		}
		seen[q] = true
	}
	if len(seen) != 3 {
		t.Errorf("round robin visited %d queues, want 3", len(seen))
	}
}

func TestStrictPriorityOrder(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4, Policy: StrictPriority})
	defer n.Close()
	dbs := make([]atomic.Int64, 3)
	qids := make([]QID, 3)
	for i := range dbs {
		qids[i], _ = n.Register(&dbs[i])
	}
	// Ready high-numbered then low-numbered: low must win.
	dbs[2].Add(1)
	n.Notify(qids[2])
	dbs[0].Add(1)
	n.Notify(qids[0])
	if got, _ := n.Wait(); got != qids[0] {
		t.Errorf("strict priority returned %v first", got)
	}
}

func TestWeightedRoundRobinConfig(t *testing.T) {
	if _, err := NewNotifier(NotifierConfig{MaxQueues: 2, Policy: WeightedRoundRobin, Weights: []int{1}}); err == nil {
		t.Error("short weights accepted")
	}
	if _, err := NewNotifier(NotifierConfig{MaxQueues: 2, Policy: WeightedRoundRobin, Weights: []int{1, 0}}); err == nil {
		t.Error("zero weight accepted")
	}
	n, err := NewNotifier(NotifierConfig{MaxQueues: 2, Policy: WeightedRoundRobin})
	if err != nil {
		t.Fatalf("default weights: %v", err)
	}
	n.Close()
	if _, err := NewNotifier(NotifierConfig{MaxQueues: -1}); err == nil {
		t.Error("negative MaxQueues accepted")
	}
	if _, err := NewNotifier(NotifierConfig{Policy: Policy{Kind: PolicyKind(99)}}); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if RoundRobin.String() != "round-robin" ||
		WeightedRoundRobin.String() != "weighted-round-robin" ||
		StrictPriority.String() != "strict-priority" ||
		DeficitRoundRobin.String() != "deficit-round-robin" ||
		EWMAAdaptive.String() != "ewma-adaptive" ||
		(Policy{Kind: PolicyKind(9)}).String() != "unknown" {
		t.Error("policy names")
	}
}

// Stress: many producers over many queues, one consumer following the
// QWAIT protocol; every produced item must be consumed exactly once.
func TestNotifierStress(t *testing.T) {
	const (
		producers    = 8
		itemsPerProd = 2000
	)
	n := newN(t, NotifierConfig{MaxQueues: producers})
	defer n.Close()

	type q struct {
		db    atomic.Int64
		items []int // guarded by mu
		mu    sync.Mutex
	}
	queues := make([]*q, producers)
	qidOf := make(map[QID]*q)
	for i := range queues {
		queues[i] = &q{}
		qid, err := n.Register(&queues[i].db)
		if err != nil {
			t.Fatal(err)
		}
		qidOf[qid] = queues[i]
	}

	var produced, consumed atomic.Int64
	var wg sync.WaitGroup
	for i, qu := range queues {
		wg.Add(1)
		go func(id int, qu *q) {
			defer wg.Done()
			qid := func() QID {
				for k, v := range qidOf {
					if v == qu {
						return k
					}
				}
				panic("missing qid")
			}()
			for j := 0; j < itemsPerProd; j++ {
				qu.mu.Lock()
				qu.items = append(qu.items, j)
				qu.mu.Unlock()
				qu.db.Add(1)
				produced.Add(1)
				n.Notify(qid)
			}
		}(i, qu)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for consumed.Load() < producers*itemsPerProd {
			qid, ok := n.WaitTimeout(2 * time.Second)
			if !ok {
				return
			}
			qu := qidOf[qid]
			if !n.Verify(qid) {
				continue
			}
			qu.db.Add(-1)
			qu.mu.Lock()
			if len(qu.items) > 0 {
				qu.items = qu.items[1:]
				consumed.Add(1)
			}
			qu.mu.Unlock()
			n.Reconsider(qid)
		}
	}()

	wg.Wait()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("consumer stalled")
	}
	if consumed.Load() != producers*itemsPerProd {
		t.Fatalf("consumed %d of %d", consumed.Load(), produced.Load())
	}
}

func TestWaitContext(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 2})
	defer n.Close()
	var db atomic.Int64
	qid, _ := n.Register(&db)

	// Cancelled context unblocks with ok=false.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := n.WaitContext(ctx); ok {
		t.Fatal("wait found phantom work")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("returned before deadline")
	}

	// Ready work returns immediately regardless of context.
	db.Add(1)
	n.Notify(qid)
	got, ok := n.WaitContext(context.Background())
	if !ok || got != qid {
		t.Fatalf("WaitContext = %v, %v", got, ok)
	}

	// Pre-cancelled context returns at once.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, ok := n.WaitContext(done); ok {
		t.Fatal("cancelled context returned work")
	}
}

func TestWaitContextWokenByNotify(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 2})
	defer n.Close()
	var db atomic.Int64
	qid, _ := n.Register(&db)
	res := make(chan QID, 1)
	go func() {
		q, ok := n.WaitContext(context.Background())
		if ok {
			res <- q
		}
	}()
	time.Sleep(10 * time.Millisecond)
	db.Add(1)
	n.Notify(qid)
	select {
	case q := <-res:
		if q != qid {
			t.Fatalf("woke with %v", q)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitContext never woke on notify")
	}
}

GO ?= go

.PHONY: all build test race vet bench chaos clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Chaos suite: fault-injected dataplane isolation/recovery tests and the
# notifier close-race hammers, repeated under the race detector.
chaos:
	$(GO) test -race -run Chaos -count=3 ./...

# Regenerate BENCH_notifier.json: the banked lock-free notifier vs the
# retired single-mutex engine over a producers x queues grid.
bench:
	$(GO) run ./cmd/notifierbench -out BENCH_notifier.json

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: all build test race vet lint bench bench-guard chaos clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis: vet always; staticcheck when installed (CI installs it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Chaos suite: fault-injected dataplane isolation/recovery tests and the
# notifier close-race hammers, repeated under the race detector.
chaos:
	$(GO) test -race -run Chaos -count=3 ./...

# Regenerate BENCH_notifier.json: the banked lock-free notifier vs the
# retired single-mutex engine over a producers x queues grid.
bench:
	$(GO) run ./cmd/notifierbench -out BENCH_notifier.json

# Regression guard: re-measure the grid and fail if any cell's best-path
# speedup over the mutex baseline drops more than 10% below the recorded
# BENCH_notifier.json numbers (ratios, so machine speed cancels out).
bench-guard:
	$(GO) run ./cmd/notifierbench -check BENCH_notifier.json -tolerance 0.10 -ops 300000 -trials 3

clean:
	$(GO) clean ./...

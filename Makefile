GO ?= go

.PHONY: all build test race vet lint bench bench-edge bench-fed bench-guard bench-steal chaos chaos-durable chaos-fed telemetry-smoke governor-smoke edge-smoke fed-smoke clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis: vet always; staticcheck and govulncheck when
# installed (CI installs both).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Chaos suite: fault-injected dataplane isolation/recovery tests and the
# notifier close-race hammers, repeated under the race detector.
chaos:
	$(GO) test -race -run Chaos -count=3 ./...

# Durability chaos: the kill -9 harness (child process flooded with
# identified messages is SIGKILLed mid-burst; recovery must replay every
# durable item exactly once and keep the dedup window) repeated under the
# race detector, plus a short WAL decoder fuzz smoke (torn tails and bit
# flips must stop recovery cleanly, never panic or invent records).
chaos-durable:
	$(GO) test -race -run ChaosDurable -count=3 ./dataplane
	$(GO) test -run FuzzWALRecover -fuzz FuzzWALRecover -fuzztime 10s ./internal/wal

# Federation chaos: the partition drill (3 nodes, one killed mid-stream;
# survivors must converge, re-home the dead node's tenants, and preserve
# exactly-once on deliberately double-sent ids) and graceful handoff
# under load, repeated under the race detector. The frame fuzz smoke
# hammers the bridge decoder with corrupt frames — it must error, never
# panic.
chaos-fed:
	$(GO) test -race -run ChaosFed -count=3 ./internal/cluster
	$(GO) test -run FuzzDecode -fuzz FuzzDecode -fuzztime 10s ./internal/cluster/frame

# Federation smoke: the federated-plane example end to end — three nodes
# shard the tenants, one tenant migrates gracefully with its dedup
# window, one node is killed mid-traffic, and the run fails unless the
# survivors converge, re-home, and hold exactly-once across all phases.
fed-smoke:
	$(GO) run -race ./examples/federated-plane -smoke

# Federation benchmark: local vs bridge-forwarded throughput and
# graceful-handoff latency over loopback TCP (single-core hosts record a
# scaling note on the forwarded:local ratio).
bench-fed:
	$(GO) run ./cmd/fedbench -duration 2s -handoffs 20 -out BENCH_federation.json

# Regenerate the benchmark reports: BENCH_notifier.json (banked notifier
# vs the retired mutex engine), BENCH_ring.json (batched vs per-item ring
# ops, SPSC and MPSC), and BENCH_dataplane.json (end-to-end planebench
# grid with the per-item baseline).
bench: bench-ring
	$(GO) run ./cmd/notifierbench -out BENCH_notifier.json
	$(GO) run ./cmd/planebench -tenants 8,64 -duration 1s -trials 3 -batch 1,16 -out BENCH_dataplane.json
	$(GO) run ./cmd/planebench -skew 1.1 -seed 1 -tenants 16 -workers 4 -batch 16 \
		-duration 1s -trials 3 -out BENCH_dataplane.json -merge
	$(GO) run ./cmd/planebench -durable -tenants 8 -batch 1,64 \
		-duration 1s -trials 3 -out BENCH_dataplane.json -merge -durable-check 0.5
	$(GO) run ./cmd/planebench -loadsweep 5,10,25,50,100 -tenants 8 -workers 4 -batch 16 \
		-duration 1s -trials 3 -out BENCH_dataplane.json -merge

bench-ring:
	$(GO) run ./cmd/ringbench -out BENCH_ring.json

# Network-edge benchmark: batched vs per-request ingest staging, then a
# paced open-loop ingest against the SSE subscriber-count grid (10k+
# concurrent connections on multi-core hosts; the grid self-caps against
# RLIMIT_NOFILE with an fd_note).
bench-edge:
	$(GO) run ./cmd/edgebench -subs 100,1000,10000 -duration 2s -out BENCH_edge.json

# Skewed-load steal smoke: Zipf(1.1) tenant load, each point measured with
# work stealing off and on. On multi-core hosts stealing must at least
# match the no-steal throughput (-steal-check 1.0); single-core hosts
# record a scaling note and skip the ratio check.
bench-steal:
	$(GO) run ./cmd/planebench -skew 1.1 -seed 1 -tenants 16 -workers 4 -batch 16 \
		-smoke -steal-check 1.0

# Regression guards: re-measure each recorded grid and fail if any cell's
# speedup ratio drops more than 10% below the stored numbers (ratios of
# two fresh measurements, so machine speed cancels out). The telemetry
# guard compares the banked notifier with and without a telemetry plane
# (default 1/64 sampling) and fails if enabling it costs more than 5% on
# the Notify path — observability must stay a branch, not a lock.
bench-guard:
	$(GO) run ./cmd/notifierbench -check BENCH_notifier.json -tolerance 0.10 -ops 300000 -trials 3
	$(GO) run ./cmd/ringbench -check BENCH_ring.json -tolerance 0.15 -ops 400000 -trials 5
	$(GO) run ./cmd/notifierbench -telemetry-check -telemetry-tolerance 0.05
	$(GO) run ./cmd/planebench -skew 1.1 -seed 1 -tenants 16 -workers 4 -batch 16 \
		-smoke -steal-check 1.0
	$(GO) run ./cmd/planebench -loadsweep 10,100 -tenants 8 -workers 4 -batch 16 \
		-smoke -prop-check 0.4
	$(GO) run ./cmd/edgebench -smoke -batch-check 2.0

# Telemetry smoke: run the observed-plane example briefly, self-scrape
# /metrics, /debug/tenants and /debug/trace, and fail if any expected
# series or span is missing.
telemetry-smoke:
	$(GO) run ./examples/observed-plane -smoke

# Elastic control-plane smoke: run the elastic-plane example briefly and
# fail unless the governor shrinks the active set at trickle load and
# grows it back on a burst (single-core hosts report, but do not fail,
# the elastic assertions — there is no parallelism to take away).
governor-smoke:
	$(GO) run ./examples/elastic-plane -smoke

# Network-edge smoke: race-enabled edgebench self-test — batched vs
# per-request ingest cells, a small SSE fan-out grid, and the HTTP
# self-checks (every subscriber delivered to, idempotency dedup,
# rate-limit 429). The >=2x batch guard only applies on multi-core
# hosts; single-core hosts record a scaling note and skip it.
edge-smoke:
	$(GO) run -race ./cmd/edgebench -smoke -batch-check 2.0

clean:
	$(GO) clean ./...

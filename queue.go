package hyperplane

import (
	"hyperplane/internal/queue"
)

// Queue pairs a lock-free ring buffer with a Notifier registration: Push
// rings the doorbell and notifies, Pop decrements it — the tenant-side
// shared-memory queue of the paper's SDP architecture, ready to use.
//
// NewQueue builds a single-producer queue (one goroutine may Push
// concurrently with one goroutine Popping); NewSharedQueue builds a
// multi-producer queue any number of goroutines may Push into (the paper's
// shared-queue scale-up organization). The notification side is fully
// concurrent either way.
type Queue[T any] struct {
	ring queue.Buffer[T]
	n    *Notifier
	qid  QID
}

// NewQueue creates an SPSC ring of the given power-of-two capacity and
// registers it with the notifier.
func NewQueue[T any](n *Notifier, capacity int) (*Queue[T], error) {
	r, err := queue.NewRing[T](capacity)
	if err != nil {
		return nil, err
	}
	return wrapQueue[T](n, r)
}

// NewSharedQueue creates a multi-producer (MPSC) ring of the given
// power-of-two capacity and registers it with the notifier: any number of
// goroutines may Push or PushBatch concurrently, while one consumer Pops.
// This is the shared-queue organization the paper scales up with — many
// tenants feeding one queue serviced under a single policy arbitration
// slot — at the cost of one CAS per producer push (or per producer batch).
func NewSharedQueue[T any](n *Notifier, capacity int) (*Queue[T], error) {
	m, err := queue.NewMPSC[T](capacity)
	if err != nil {
		return nil, err
	}
	return wrapQueue[T](n, m)
}

func wrapQueue[T any](n *Notifier, b queue.Buffer[T]) (*Queue[T], error) {
	qid, err := n.Register(b.Doorbell())
	if err != nil {
		return nil, err
	}
	return &Queue[T]{ring: b, n: n, qid: qid}, nil
}

// QID returns the queue's notifier ID.
func (q *Queue[T]) QID() QID { return q.qid }

// Push enqueues v and notifies the data plane; it returns false if the
// ring is full (backpressure).
func (q *Queue[T]) Push(v T) bool {
	if !q.ring.Push(v) {
		return false
	}
	q.n.Notify(q.qid)
	return true
}

// PushBatch enqueues as many of vs as fit using the ring's bulk copy —
// the elements land in at most two contiguous segment copies, the cursor
// publishes once, the doorbell rings once, and one Notify covers the whole
// batch. It returns the number enqueued.
func (q *Queue[T]) PushBatch(vs []T) int {
	pushed := q.ring.PushBatch(vs)
	if pushed > 0 {
		q.n.Notify(q.qid)
	}
	return pushed
}

// Pop dequeues the oldest element (consumer side). Callers following the
// QWAIT protocol invoke Consume (or Reconsider) afterwards; Serve does
// this for you.
func (q *Queue[T]) Pop() (T, bool) {
	return q.ring.Pop()
}

// PopBatch dequeues up to len(dst) elements into dst with one doorbell
// decrement and one cursor publish. Callers following the QWAIT protocol
// invoke ConsumeN(qid, n) afterwards so work-aware policies see the true
// batch cost.
func (q *Queue[T]) PopBatch(dst []T) int {
	return q.ring.PopBatch(dst)
}

// Len returns the doorbell counter.
func (q *Queue[T]) Len() int { return q.ring.Len() }

// Cap returns the ring capacity.
func (q *Queue[T]) Cap() int { return q.ring.Cap() }

// Close unregisters the queue from the notifier.
func (q *Queue[T]) Close() error { return q.n.Unregister(q.qid) }

// Mux routes Wait results to the right Queue for heterogeneous consumers:
// a tiny helper implementing the full QWAIT consumer protocol over a set
// of queues with one callback per item. Queues are tracked in a dense
// slice indexed by QID, so per-item routing is a bounds check and a load.
type Mux[T any] struct {
	n      *Notifier
	queues []*Queue[T] // dense, indexed by QID; nil = not ours
}

// NewMux creates an empty mux over the notifier.
func NewMux[T any](n *Notifier) *Mux[T] {
	return &Mux[T]{n: n}
}

// Add creates and tracks a new queue.
func (m *Mux[T]) Add(capacity int) (*Queue[T], error) {
	q, err := NewQueue[T](m.n, capacity)
	if err != nil {
		return nil, err
	}
	for int(q.qid) >= len(m.queues) {
		m.queues = append(m.queues, nil)
	}
	m.queues[q.qid] = q
	return q, nil
}

// Serve runs the QWAIT consumer loop, invoking fn for every item until the
// notifier is closed or fn returns false. It returns the number of items
// processed. Run one Serve per data plane "core" goroutine; queues are
// SPSC, so give each Serve its own Mux (its own queue set).
//
// Serve uses Consume: it pops first (Pop decrements the doorbell), then
// re-activates or re-arms in a single step, so each item costs one
// ready-set bank acquisition instead of separate Verify and Reconsider
// passes.
func (m *Mux[T]) Serve(fn func(qid QID, item T) bool) int64 {
	var handled int64
	for {
		qid, ok := m.n.Wait()
		if !ok {
			return handled
		}
		var q *Queue[T]
		if int(qid) < len(m.queues) {
			q = m.queues[qid]
		}
		if q == nil {
			continue // foreign queue
		}
		item, got := q.Pop()
		m.n.Consume(qid)
		if !got {
			m.n.spurious.Add(1) // woke with nothing to pop
			continue
		}
		handled++
		if !fn(qid, item) {
			return handled
		}
	}
}
